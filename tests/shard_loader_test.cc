// table/shard_loader + datagen sharded generation: quorum semantics,
// deterministic assembly, degraded-mode reports, and exact rebuild of a
// degraded corpus from its lost-shard mask (ISSUE 4 tentpole).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "datagen/corpus_gen.h"
#include "table/shard_loader.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/status.h"

namespace autotest::table {
namespace {

class ShardLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FailpointRegistry::Global().Reset(); }
  void TearDown() override { util::FailpointRegistry::Global().Reset(); }

  ShardLoadOptions VirtualOptions() {
    ShardLoadOptions opt;
    opt.clock = &clock_;
    return opt;
  }

  util::VirtualClock clock_;
};

TEST_F(ShardLoaderTest, LoadsAllShardsInAscendingOrder) {
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t shard) -> util::Result<size_t> { return shard * 10; };
  ShardLoadReport report;
  auto r = LoadShards<size_t>(8, load, VirtualOptions(), &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ((*r)[i], i * 10);
  EXPECT_EQ(report.num_loaded, 8u);
  EXPECT_EQ(report.num_failed, 0u);
  EXPECT_EQ(report.total_retries, 0u);
  EXPECT_FALSE(report.degraded());
}

TEST_F(ShardLoaderTest, QuorumAllowsPermanentShardLossInOrder) {
  // Shards 2 and 5 are permanently corrupt; quorum 0.7 of 8 needs 6.
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t shard) -> util::Result<size_t> {
    if (shard == 2 || shard == 5) return util::DataLossError("corrupt");
    return shard;
  };
  ShardLoadOptions opt = VirtualOptions();
  opt.min_shard_fraction = 0.7;
  ShardLoadReport report;
  auto r = LoadShards<size_t>(8, load, opt, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, (std::vector<size_t>{0, 1, 3, 4, 6, 7}));
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.LostShards(), (std::vector<size_t>{2, 5}));
  EXPECT_EQ(report.outcomes[2].code, util::StatusCode::kDataLoss);
  EXPECT_EQ(report.outcomes[2].attempts, 1u);  // permanent: no retry
  EXPECT_NE(report.Summary().find("6/8"), std::string::npos);
  EXPECT_NE(report.Summary().find("2:DATA_LOSS"), std::string::npos);
}

TEST_F(ShardLoaderTest, QuorumMissedFailsWithDominantPermanentCode) {
  // One transient and one permanent failure above the loss budget: the
  // overall status prefers the permanent (actionable) code.
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t shard) -> util::Result<size_t> {
    if (shard == 0) return util::IoError("flaky disk");
    if (shard == 1) return util::DataLossError("corrupt");
    return shard;
  };
  ShardLoadOptions opt = VirtualOptions();
  opt.min_shard_fraction = 1.0;
  opt.retry.max_attempts = 2;
  ShardLoadReport report;
  auto r = LoadShards<size_t>(4, load, opt, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("shard quorum missed: 2/4"),
            std::string::npos);
  EXPECT_EQ(report.outcomes[0].attempts, 2u);  // transient was retried
  EXPECT_EQ(report.outcomes[1].attempts, 1u);  // permanent was not
}

TEST_F(ShardLoaderTest, QuorumRequiresAtLeastOneShard) {
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t) -> util::Result<size_t> { return util::IoError("down"); };
  ShardLoadOptions opt = VirtualOptions();
  opt.min_shard_fraction = 0.0;  // even "no quorum" needs one shard
  opt.retry.max_attempts = 1;
  auto r = LoadShards<size_t>(3, load, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST_F(ShardLoaderTest, InvalidQuorumIsRejected) {
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t) -> util::Result<size_t> { return size_t{1}; };
  ShardLoadOptions opt = VirtualOptions();
  opt.min_shard_fraction = 1.5;
  auto r = LoadShards<size_t>(2, load, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ShardLoaderTest, RetriesSleepOnlyVirtualTime) {
  std::atomic<int> failures_left{3};
  std::function<util::Result<size_t>(size_t)> load =
      [&](size_t shard) -> util::Result<size_t> {
    if (failures_left.fetch_sub(1) > 0) return util::IoError("transient");
    return shard;
  };
  ShardLoadOptions opt = VirtualOptions();
  opt.retry.max_attempts = 8;
  opt.num_threads = 1;  // deterministic failures_left consumption
  ShardLoadReport report;
  auto r = LoadShards<size_t>(2, load, opt, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(report.total_retries, 3u);
  EXPECT_EQ(clock_.sleep_calls(), 3u);
  EXPECT_GT(clock_.slept_micros(), 0);
}

TEST_F(ShardLoaderTest, ZeroShardsLoadsNothing) {
  std::function<util::Result<size_t>(size_t)> load =
      [](size_t) -> util::Result<size_t> { return size_t{0}; };
  ShardLoadReport report;
  auto r = LoadShards<size_t>(0, load, VirtualOptions(), &report);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(report.num_shards, 0u);
}

// --- sharded corpus generation ---

TEST_F(ShardLoaderTest, ShardProfileIsIdentityForSingleShard) {
  datagen::CorpusProfile p = datagen::RelationalTablesProfile(100, 7);
  datagen::CorpusProfile s = datagen::ShardProfile(p, 0, 1);
  EXPECT_EQ(s.num_columns, p.num_columns);
  EXPECT_EQ(s.seed, p.seed);
  EXPECT_EQ(s.name, p.name);
}

TEST_F(ShardLoaderTest, ShardProfilesPartitionColumnsWithDistinctSeeds) {
  datagen::CorpusProfile p = datagen::RelationalTablesProfile(103, 7);
  size_t total = 0;
  std::vector<uint64_t> seeds;
  for (size_t s = 0; s < 4; ++s) {
    datagen::CorpusProfile sp = datagen::ShardProfile(p, s, 4);
    total += sp.num_columns;
    seeds.push_back(sp.seed);
  }
  EXPECT_EQ(total, 103u);
  for (size_t a = 0; a < seeds.size(); ++a) {
    for (size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]);
    }
  }
}

std::string CorpusFingerprint(const table::Corpus& corpus) {
  std::string out;
  for (const Column& c : corpus) {
    out += c.name;
    out += '|';
    for (const std::string& v : c.values) {
      out += v;
      out += ';';
    }
    out += '\n';
  }
  return out;
}

TEST_F(ShardLoaderTest, ShardedGenerationIsDeterministic) {
  datagen::CorpusProfile p = datagen::TablibProfile(60, 11);
  auto a = datagen::TryGenerateCorpusSharded(p, 6, VirtualOptions());
  auto b = datagen::TryGenerateCorpusSharded(p, 6, VirtualOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CorpusFingerprint(*a), CorpusFingerprint(*b));
  EXPECT_EQ(a->size(), 60u);
}

TEST_F(ShardLoaderTest, TransientFaultsDoNotChangeTheGeneratedCorpus) {
  // A run whose shard reads all eventually succeed must produce a corpus
  // byte-identical to the fault-free run: retries are invisible to output.
  datagen::CorpusProfile p = datagen::TablibProfile(40, 13);
  auto clean = datagen::TryGenerateCorpusSharded(p, 4, VirtualOptions());
  ASSERT_TRUE(clean.ok());

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("shard.read=on").ok());  // retry always saves it
  ShardLoadOptions opt = VirtualOptions();
  opt.retry.max_attempts = 2;
  ShardLoadReport report;
  auto faulty = datagen::TryGenerateCorpusSharded(p, 4, opt, &report);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(report.total_retries, 4u);
  EXPECT_EQ(CorpusFingerprint(*clean), CorpusFingerprint(*faulty));
}

TEST_F(ShardLoaderTest, DegradedRebuildFromMaskMatchesSurvivors) {
  // Losing shard 2 under quorum must yield exactly the corpus that a
  // from-scratch rebuild with include_shard={0,1,3} produces — the
  // property `check` relies on to reconstruct a degraded training corpus.
  datagen::CorpusProfile p = datagen::TablibProfile(40, 17);
  ShardLoadOptions opt = VirtualOptions();
  opt.min_shard_fraction = 0.7;

  // Fail shard 2 permanently via a wrapper (independent of failpoints).
  std::function<util::Result<table::Corpus>(size_t)> load =
      [&](size_t shard) -> util::Result<table::Corpus> {
    if (shard == 2) return util::DataLossError("lost shard");
    return datagen::GenerateCorpus(datagen::ShardProfile(p, shard, 4));
  };
  ShardLoadReport report;
  auto degraded = LoadShards<table::Corpus>(4, load, opt, &report);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(report.LostShards(), (std::vector<size_t>{2}));
  table::Corpus flat;
  for (table::Corpus& c : *degraded) {
    for (Column& col : c) flat.push_back(std::move(col));
  }

  auto rebuilt = datagen::TryGenerateCorpusSharded(
      p, 4, VirtualOptions(), nullptr, /*include_shard=*/{0, 1, 3});
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(CorpusFingerprint(flat), CorpusFingerprint(*rebuilt));
}

TEST_F(ShardLoaderTest, OutOfRangeMaskIsRejected) {
  datagen::CorpusProfile p = datagen::TablibProfile(10, 3);
  auto r = datagen::TryGenerateCorpusSharded(p, 2, VirtualOptions(), nullptr,
                                             {0, 5});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ShardLoaderTest, CsvShardLoadingFlattensInOrder) {
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    std::string path =
        "/tmp/autotest_shard_" + std::to_string(i) + ".csv";
    std::ofstream out(path);
    out << "col" << i << "\nv" << i << "\n";
    paths.push_back(path);
  }
  ShardLoadReport report;
  auto corpus = TryLoadCorpusFromCsvShards(paths, CsvOptions{},
                                           VirtualOptions(), &report);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_EQ(corpus->size(), 3u);
  EXPECT_EQ((*corpus)[0].name, "col0");
  EXPECT_EQ((*corpus)[2].name, "col2");
  for (const std::string& path : paths) std::remove(path.c_str());
}

}  // namespace
}  // namespace autotest::table
