// The serving tier (ISSUE 7, DESIGN.md §4h): wire framing, bounded
// admission, per-request deadlines, versioned hot-reload and graceful
// drain.
//
// The headline properties proven here:
//   * overload is deterministic — with every worker parked and the queue
//     at depth, each extra connection receives a structured
//     RESOURCE_EXHAUSTED shed and serve.requests_shed counts exactly them;
//   * a deadline that expires mid-request degrades to a partial,
//     provenance-stamped report instead of an error or a stall;
//   * hot-reload never mixes rule-set versions inside one response, even
//     with reloads racing a multi-threaded request hammer (the TSan CI
//     shard runs this suite for exactly that reason);
//   * drain sheds still-queued requests with reason=draining and always
//     answers every admitted connection.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/serialization.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "typedet/eval_functions.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/retry.h"
#include "util/status.h"

namespace autotest::serve {
namespace {

using util::StatusCode;

uint64_t CounterValue(std::string_view name) {
  return metrics::Registry::Global().GetCounter(name).value();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// A clock whose reading advances by a fixed step on every NowMicros call:
// virtual time that passes *because work happens*, which lets a test
// expire a deadline inside the predict loop deterministically.
class StepClock final : public util::Clock {
 public:
  explicit StepClock(int64_t step) : step_(step) {}
  int64_t NowMicros() override {
    return now_.fetch_add(step_, std::memory_order_relaxed) + step_;
  }
  void SleepMicros(int64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

 private:
  const int64_t step_;
  std::atomic<int64_t> now_{0};
};

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new table::Corpus(
        datagen::GenerateCorpus(datagen::TablibProfile(400, 5)));
    typedet::EvalFunctionSetOptions opt;
    opt.embedding_centroids_per_model = 30;
    evals_ = new typedet::EvalFunctionSet(
        typedet::EvalFunctionSet::Build(*corpus_, opt));
    core::TrainOptions topt;
    topt.synthetic_count = 200;
    model_ = new core::TrainedModel(
        core::TrainAutoTest(*corpus_, *evals_, topt));
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete evals_;
    evals_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    ASSERT_GE(model_->constraints.size(), 1u)
        << "fixture model trained no constraints";
  }

  void TearDown() override { util::FailpointRegistry::Global().Reset(); }

  // A CSV with one textual column (the predictor's input) and one numeric
  // column (skipped up front, same policy as `autotest check`).
  static std::string SampleCsv() {
    return "city,amount\nBeijing,1\nParis,2\nTokyo,3\nOsaka,4\n";
  }

  static std::string CheckPayload() {
    Request request;
    request.verb = "check";
    request.table = "sample";
    request.body = SampleCsv();
    return SerializeRequest(request);
  }

  static std::string PingPayload() {
    Request request;
    request.verb = "ping";
    return SerializeRequest(request);
  }

  // A store serving this test's own rules file (distinct paths so suites
  // running in parallel never collide).
  std::unique_ptr<SnapshotStore> MakeLoadedStore(const std::string& path) {
    WriteFile(path, core::SerializeRules(model_->constraints));
    auto store = std::make_unique<SnapshotStore>(evals_, path);
    EXPECT_TRUE(store->TryReload().ok());
    return store;
  }

  static table::Corpus* corpus_;
  static typedet::EvalFunctionSet* evals_;
  static core::TrainedModel* model_;
};

table::Corpus* ServeTest::corpus_ = nullptr;
typedet::EvalFunctionSet* ServeTest::evals_ = nullptr;
core::TrainedModel* ServeTest::model_ = nullptr;

// ---------------------------------------------------------------- wire --

TEST_F(ServeTest, WireRequestRoundTripsAndRejectsGarbage) {
  Request request;
  request.verb = "check";
  request.deadline_ms = 250;
  request.table = "orders";
  request.body = SampleCsv();
  auto parsed = TryParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, "check");
  EXPECT_EQ(parsed->deadline_ms, 250);
  EXPECT_EQ(parsed->table, "orders");
  EXPECT_EQ(parsed->body, SampleCsv());

  // Strictness: bad magic, unknown verb, unknown key and a malformed
  // deadline are each kInvalidArgument — a typoed knob must not silently
  // serve with defaults. deadline_ms is client-controlled, so values
  // over the 24h cap (including ones that overflow strtoll) are rejected
  // before any µs arithmetic can overflow.
  for (std::string_view bad :
       {"not.the.magic ping\n\n", "autotest.serve.v1 destroy\n\n",
        "autotest.serve.v1 ping\ndead_line_ms=5\n\n",
        "autotest.serve.v1 check\ndeadline_ms=soon\n\n",
        "autotest.serve.v1 check\ndeadline_ms=-4\n\n",
        "autotest.serve.v1 check\ndeadline_ms=86400001\n\n",
        "autotest.serve.v1 check\ndeadline_ms=9223372036854775807\n\n",
        "autotest.serve.v1 check\ndeadline_ms=99999999999999999999999\n\n"}) {
    auto r = TryParseRequest(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  auto at_cap = TryParseRequest("autotest.serve.v1 ping\ndeadline_ms=" +
                                std::to_string(kMaxDeadlineMs) + "\n\n");
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap->deadline_ms, kMaxDeadlineMs);
}

TEST_F(ServeTest, WireResponseRoundTripsCodeFieldsAndBody) {
  Response response;
  response.code = StatusCode::kResourceExhausted;
  response.AddField("reason", "shed");
  response.AddField("version", "3");
  response.body = "server is saturated; retry with backoff\n";
  const std::string payload = SerializeResponse(response);
  // The status line is grep-able by scripts: stable code name, no prose.
  EXPECT_EQ(payload.rfind("autotest.serve.v1 RESOURCE_EXHAUSTED\n", 0), 0u);
  auto parsed = TryParseResponse(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(parsed->Field("reason"), "shed");
  EXPECT_EQ(parsed->Field("version"), "3");
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(parsed->Field("absent"), "");

  auto bad = TryParseResponse("autotest.serve.v1 NOT_A_CODE\n\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, FramingEnforcesCapAndDetectsTruncation) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "hello frames";
  util::Status write_st = TryWriteFrame(fds[1], payload);
  ASSERT_TRUE(write_st.ok()) << write_st.ToString();
  auto read_back = TryReadFrame(fds[0], 1 << 20);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, payload);

  // Over-cap frames are rejected from the 4-byte header alone, before any
  // allocation proportional to the claimed length.
  write_st = TryWriteFrame(fds[1], payload);
  ASSERT_TRUE(write_st.ok());
  auto capped = TryReadFrame(fds[0], payload.size() - 1);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  ::close(fds[0]);
  ::close(fds[1]);

  // A peer that vanishes mid-payload is kDataLoss, not a hang.
  ASSERT_EQ(::pipe(fds), 0);
  const std::string frame = EncodeFrame("truncated payload");
  const std::string half = frame.substr(0, frame.size() / 2);
  ASSERT_EQ(::write(fds[1], half.data(), half.size()),
            static_cast<ssize_t>(half.size()));
  ::close(fds[1]);
  auto truncated = TryReadFrame(fds[0], 1 << 20);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  ::close(fds[0]);
}

// ----------------------------------------------------------- admission --

TEST_F(ServeTest, AdmissionQueueNeverBlocksAndNeverExceedsDepth) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.TryPush({10, 0}));
  EXPECT_TRUE(queue.TryPush({11, 0}));
  EXPECT_FALSE(queue.TryPush({12, 0}));  // at depth: shed, don't block
  EXPECT_EQ(queue.size(), 2u);

  auto job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->fd, 10);
  EXPECT_TRUE(queue.TryPush({13, 0}));  // slot freed

  queue.CloseAdmissions();
  EXPECT_FALSE(queue.TryPush({14, 0}));
  // Queued jobs drain in order after admissions close.
  EXPECT_EQ(queue.Pop()->fd, 11);
  EXPECT_EQ(queue.Pop()->fd, 13);
  queue.Shutdown();
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST_F(ServeTest, AdmissionDrainRemainingReturnsQueuedJobs) {
  AdmissionQueue queue(4);
  EXPECT_TRUE(queue.TryPush({20, 0}));
  EXPECT_TRUE(queue.TryPush({21, 0}));
  std::vector<AdmittedJob> left = queue.DrainRemaining();
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0].fd, 20);
  EXPECT_EQ(left[1].fd, 21);
  EXPECT_FALSE(queue.TryPush({22, 0}));  // DrainRemaining closed admissions
  EXPECT_EQ(queue.size(), 0u);
}

// ------------------------------------------------------------ snapshot --

TEST_F(ServeTest, ReloadVersionsAdvanceAndFailuresKeepOldSnapshot) {
  const std::string path = "/tmp/autotest_serve_snapshot.sdc";
  auto store = MakeLoadedStore(path);
  EXPECT_EQ(store->version(), 1u);
  auto v1 = store->Get();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_GT(v1->predictor().num_rules(), 0u);

  // Corrupt bytes: the load-validate-then-swap contract means the old
  // snapshot keeps serving, bit for bit, and the failure is counted.
  const uint64_t failures_before = CounterValue(metrics::kMServeReloadFailures);
  WriteFile(path, "sdc.rules.v? mangled beyond recognition\n");
  util::Status corrupt = store->TryReload();
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(store->version(), 1u);
  EXPECT_EQ(store->Get().get(), v1.get());

  // A parseable file with zero servable rules is also a validation
  // failure: swapping it in would turn the daemon into a silent no-op.
  WriteFile(path, core::SerializeRules({}));
  util::Status empty = store->TryReload();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store->version(), 1u);

  // Injected faults on the reload path itself and inside the loader.
  auto& reg = util::FailpointRegistry::Global();
  WriteFile(path, core::SerializeRules(model_->constraints));
  ASSERT_TRUE(reg.Configure("serve.reload=on").ok());
  EXPECT_FALSE(store->TryReload().ok());
  reg.Disarm();
  ASSERT_TRUE(reg.Configure("rules.parse=on").ok());
  EXPECT_FALSE(store->TryReload().ok());
  reg.Disarm();
  EXPECT_EQ(store->version(), 1u);
  EXPECT_EQ(store->Get().get(), v1.get());
  EXPECT_GE(CounterValue(metrics::kMServeReloadFailures),
            failures_before + 4);

  // With the good file back, the next reload swaps and bumps the version.
  const uint64_t reloads_before = CounterValue(metrics::kMServeReloads);
  ASSERT_TRUE(store->TryReload().ok());
  EXPECT_EQ(store->version(), 2u);
  EXPECT_NE(store->Get().get(), v1.get());
  EXPECT_EQ(CounterValue(metrics::kMServeReloads), reloads_before + 1);
}

// ------------------------------------------------------------- session --

TEST_F(ServeTest, HandlePayloadServesPingMetricsReloadAndCheck) {
  const std::string path = "/tmp/autotest_serve_session.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;

  Response ping = HandlePayload(PingPayload(), *store, options, -1);
  EXPECT_EQ(ping.code, StatusCode::kOk);
  EXPECT_EQ(ping.Field("version"), "1");
  EXPECT_EQ(ping.body, "pong\n");

  Request metrics_request;
  metrics_request.verb = "metrics";
  Response metrics_response = HandlePayload(
      SerializeRequest(metrics_request), *store, options, -1);
  EXPECT_EQ(metrics_response.code, StatusCode::kOk);
  EXPECT_NE(metrics_response.body.find("autotest.metrics.v1"),
            std::string::npos);
  EXPECT_NE(metrics_response.body.find("serve.requests"),
            std::string::npos);

  Request reload_request;
  reload_request.verb = "reload";
  Response reloaded = HandlePayload(SerializeRequest(reload_request),
                                    *store, options, -1);
  EXPECT_EQ(reloaded.code, StatusCode::kOk);
  EXPECT_EQ(reloaded.Field("version"), "2");

  const uint64_t ok_before = CounterValue(metrics::kMServeRequestsOk);
  Response check = HandlePayload(CheckPayload(), *store, options, -1);
  EXPECT_EQ(check.code, StatusCode::kOk);
  EXPECT_EQ(check.Field("provenance"), "full");
  EXPECT_EQ(check.Field("version"), "2");
  EXPECT_EQ(check.Field("columns_checked"), "1");  // `amount` is numeric
  EXPECT_EQ(check.Field("columns_skipped"), "0");
  EXPECT_EQ(CounterValue(metrics::kMServeRequestsOk), ok_before + 1);

  // A malformed payload is a structured INVALID_ARGUMENT response (and an
  // error-counted request), never a dropped connection.
  const uint64_t err_before = CounterValue(metrics::kMServeRequestsError);
  Response bad = HandlePayload("autotest.serve.v1 explode\n\n", *store,
                               options, -1);
  EXPECT_EQ(bad.code, StatusCode::kInvalidArgument);
  EXPECT_EQ(CounterValue(metrics::kMServeRequestsError), err_before + 1);
}

TEST_F(ServeTest, RequestsBeforeFirstLoadFailStructurally) {
  SnapshotStore store(evals_, "/tmp/autotest_serve_never_loaded.sdc");
  ServeOptions options;
  Response response = HandlePayload(PingPayload(), store, options, -1);
  EXPECT_EQ(response.code, StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ deadline --

TEST_F(ServeTest, BudgetSpentInQueueFailsBeforeParse) {
  const std::string path = "/tmp/autotest_serve_dl_queue.sdc";
  auto store = MakeLoadedStore(path);
  util::VirtualClock clock;
  ServeOptions options;
  options.clock = &clock;

  Request request;
  request.verb = "check";
  request.deadline_ms = 5;
  request.body = SampleCsv();
  // Admitted at t=0, popped by a worker at t=10ms: the 5ms budget died in
  // the queue, so the outcome is a structured DEADLINE_EXCEEDED (there is
  // no partial result to report yet).
  clock.Advance(10'000);
  const uint64_t expired_before =
      CounterValue(metrics::kMServeDeadlineExpirations);
  Response response = HandlePayload(SerializeRequest(request), *store,
                                    options, /*admitted_micros=*/0);
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CounterValue(metrics::kMServeDeadlineExpirations),
            expired_before + 1);
}

TEST_F(ServeTest, ParseConsumingTheBudgetDegradesToPartialParse) {
  const std::string path = "/tmp/autotest_serve_dl_parse.sdc";
  auto store = MakeLoadedStore(path);
  util::VirtualClock clock;
  ServeOptions options;
  options.clock = &clock;
  // The phase hook plays a slow CSV parse: by the predict boundary the
  // whole 50ms budget is gone.
  options.phase_hook = [&clock](std::string_view phase) {
    if (phase == "predict") clock.Advance(50'000);
  };

  Request request;
  request.verb = "check";
  request.deadline_ms = 50;
  request.table = "slow";
  request.body = SampleCsv();
  Response response = HandlePayload(SerializeRequest(request), *store,
                                    options, /*admitted_micros=*/0);
  // Degraded, not failed: the response is OK with provenance stamped so
  // the client knows nothing was predicted.
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.Field("provenance"), "partial:parse");
  EXPECT_EQ(response.Field("columns_checked"), "0");
  EXPECT_EQ(response.Field("detections"), "0");
}

TEST_F(ServeTest, ExpiryInsideThePredictLoopDegradesToPartialPredict) {
  const std::string path = "/tmp/autotest_serve_dl_predict.sdc";
  auto store = MakeLoadedStore(path);
  // Every clock reading costs 400 virtual µs; a 1ms budget survives the
  // parse-boundary checks but expires at a rule-group gate inside
  // PredictInternal — exactly the mid-predict expiry path.
  StepClock clock(400);
  ServeOptions options;
  options.clock = &clock;

  Request request;
  request.verb = "check";
  request.deadline_ms = 1;
  request.body = SampleCsv();
  const uint64_t expired_before =
      CounterValue(metrics::kMServeDeadlineExpirations);
  Response response = HandlePayload(SerializeRequest(request), *store,
                                    options, /*admitted_micros=*/0);
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.Field("provenance"), "partial:predict");
  EXPECT_GE(CounterValue(metrics::kMServeDeadlineExpirations),
            expired_before + 1);
}

// ------------------------------------------------------------ overload --

// A latch the phase hook parks worker threads on, so tests can hold the
// server in a known saturated state.
struct WorkerLatch {
  std::mutex mu;
  std::condition_variable cv;
  size_t parked = 0;
  bool released = false;

  void ParkOn(std::string_view phase, std::string_view at) {
    if (phase != at) return;
    std::unique_lock<std::mutex> lock(mu);
    ++parked;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void WaitParked(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

int MustConnect(uint16_t port) {
  auto fd = TryConnect("127.0.0.1", port);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  return fd.ok() ? *fd : -1;
}

void SendPayload(int fd, const std::string& payload) {
  util::Status st = TryWriteFrame(fd, payload);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

Response MustReadResponse(int fd) {
  auto frame = TryReadFrame(fd, 1 << 20);
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  if (!frame.ok()) return Response{};
  auto response = TryParseResponse(*frame);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? *response : Response{};
}

void WaitForQueueSize(const Server& server, size_t n) {
  for (int i = 0; i < 5000 && server.queue_size() != n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.queue_size(), n);
}

TEST_F(ServeTest, OverloadShedsDeterministicallyAndCountsEveryShed) {
  const std::string path = "/tmp/autotest_serve_overload.sdc";
  auto store = MakeLoadedStore(path);

  WorkerLatch latch;
  ServeOptions options;
  options.max_inflight = 1;
  options.queue_depth = 2;
  options.phase_hook = [&latch](std::string_view phase) {
    latch.ParkOn(phase, "read");
  };

  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  // Saturate: one request parks the only worker, two more fill the queue.
  const int inflight = MustConnect(server.port());
  SendPayload(inflight, PingPayload());
  latch.WaitParked(1);
  std::vector<int> queued;
  for (int i = 0; i < 2; ++i) {
    int fd = MustConnect(server.port());
    SendPayload(fd, PingPayload());
    queued.push_back(fd);
  }
  WaitForQueueSize(server, 2);

  // Every further connection is shed by the acceptor itself, so the count
  // is exact, not a race: 4 connections, 4 structured sheds.
  const uint64_t shed_before = CounterValue(metrics::kMServeRequestsShed);
  constexpr int kShedRequests = 4;
  for (int i = 0; i < kShedRequests; ++i) {
    int fd = MustConnect(server.port());
    Response shed = MustReadResponse(fd);
    EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
    EXPECT_EQ(shed.Field("reason"), "shed");
    ::close(fd);
  }
  EXPECT_EQ(CounterValue(metrics::kMServeRequestsShed),
            shed_before + kShedRequests);

  // A peer that vanishes before reading its shed notice (RST via
  // SO_LINGER=0) costs the acceptor one failed write, not the process a
  // SIGPIPE: the sheds below still complete on the same acceptor thread.
  int rude = MustConnect(server.port());
  struct linger lg {1, 0};
  ::setsockopt(rude, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(rude);
  for (int i = 0; i < 2; ++i) {
    int fd = MustConnect(server.port());
    Response shed = MustReadResponse(fd);
    EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
    ::close(fd);
  }
  constexpr int kTotalSheds = kShedRequests + 3;  // + rude + 2 after it

  // Release the latch: every admitted request completes normally.
  latch.Release();
  EXPECT_EQ(MustReadResponse(inflight).code, StatusCode::kOk);
  ::close(inflight);
  for (int fd : queued) {
    EXPECT_EQ(MustReadResponse(fd).code, StatusCode::kOk);
    ::close(fd);
  }

  DrainReport report = server.StopAndDrain();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.shed, static_cast<uint64_t>(kTotalSheds));
  EXPECT_EQ(report.drain_shed, 0u);
  EXPECT_TRUE(report.drained_clean);
}

// A client that connects and never sends a frame must not pin a worker:
// the read is bounded by the default budget, answers a structured
// DEADLINE_EXCEEDED, and the worker serves the next request normally.
TEST_F(ServeTest, SilentClientTimesOutStructurallyAndFreesTheWorker) {
  const std::string path = "/tmp/autotest_serve_silent.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  options.max_inflight = 1;
  options.default_deadline_micros = 200'000;  // 200ms read budget
  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  const uint64_t read_errors_before =
      CounterValue(metrics::kMServeReadErrors);
  int silent = MustConnect(server.port());
  Response timed_out = MustReadResponse(silent);
  EXPECT_EQ(timed_out.code, StatusCode::kDeadlineExceeded);
  ::close(silent);
  EXPECT_GE(CounterValue(metrics::kMServeReadErrors),
            read_errors_before + 1);

  // The only worker is free again; a well-behaved request succeeds.
  int fd = MustConnect(server.port());
  SendPayload(fd, PingPayload());
  EXPECT_EQ(MustReadResponse(fd).code, StatusCode::kOk);
  ::close(fd);
  DrainReport report = server.StopAndDrain();
  EXPECT_TRUE(report.drained_clean);
}

// --------------------------------------------------------------- drain --

TEST_F(ServeTest, DrainShedsQueuedRequestsWithDrainingReason) {
  const std::string path = "/tmp/autotest_serve_drain.sdc";
  auto store = MakeLoadedStore(path);

  WorkerLatch latch;
  ServeOptions options;
  options.max_inflight = 1;
  options.queue_depth = 4;
  options.drain_timeout_micros = 0;  // shed the queue immediately
  options.phase_hook = [&latch](std::string_view phase) {
    latch.ParkOn(phase, "read");
  };

  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  const int inflight = MustConnect(server.port());
  SendPayload(inflight, PingPayload());
  latch.WaitParked(1);
  std::vector<int> queued;
  for (int i = 0; i < 2; ++i) {
    int fd = MustConnect(server.port());
    SendPayload(fd, PingPayload());
    queued.push_back(fd);
  }
  WaitForQueueSize(server, 2);

  const uint64_t drain_shed_before = CounterValue(metrics::kMServeDrainShed);
  server.RequestStop();
  DrainReport report;
  std::thread drainer([&] { report = server.StopAndDrain(); });

  // The queued-but-never-started requests get their structured "draining"
  // shed while the in-flight one is still being served.
  for (int fd : queued) {
    Response shed = MustReadResponse(fd);
    EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
    EXPECT_EQ(shed.Field("reason"), "draining");
    ::close(fd);
  }

  latch.Release();
  EXPECT_EQ(MustReadResponse(inflight).code, StatusCode::kOk);
  ::close(inflight);
  drainer.join();

  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.drain_shed, 2u);
  EXPECT_FALSE(report.drained_clean);
  EXPECT_EQ(CounterValue(metrics::kMServeDrainShed), drain_shed_before + 2);
}

// StopAndDrain must terminate even while a worker sits in a frame read
// whose budget is far longer than the drain timeout: the drain sweep
// shuts the parked socket down, the read fails immediately, and join
// returns — SIGTERM always terminates the daemon.
TEST_F(ServeTest, DrainShutsDownSocketsParkedInRead) {
  const std::string path = "/tmp/autotest_serve_drain_read.sdc";
  auto store = MakeLoadedStore(path);
  std::atomic<int> read_phases{0};
  ServeOptions options;
  options.max_inflight = 1;
  options.drain_timeout_micros = 0;
  // A read budget drain must not have to wait out.
  options.default_deadline_micros = 30'000'000;
  options.phase_hook = [&read_phases](std::string_view phase) {
    if (phase == "read") read_phases.fetch_add(1);
  };
  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  int silent = MustConnect(server.port());
  for (int i = 0; i < 5000 && read_phases.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(read_phases.load(), 1);
  // A beat for the worker to move from the phase hook into the poll().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto drain_started = std::chrono::steady_clock::now();
  server.RequestStop();
  DrainReport report = server.StopAndDrain();
  const auto drain_seconds =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - drain_started)
          .count();
  EXPECT_LT(drain_seconds, 10) << "drain waited out the 30s read budget";
  EXPECT_EQ(report.drain_shed, 0u);

  // The silent client sees its connection die, not a response.
  auto frame = TryReadFrame(silent, 1 << 20);
  EXPECT_FALSE(frame.ok());
  ::close(silent);
}

// ---------------------------------------------------------- hot-reload --

TEST_F(ServeTest, ReloadUnderLoadNeverMixesVersionsInOneResponse) {
  const std::string path = "/tmp/autotest_serve_reload_race.sdc";
  // Two rule files with provably different servable-rule counts: every
  // response's (version, rules) pair must match exactly one of them.
  const std::string one_rule =
      core::SerializeRules({model_->constraints[0]});
  const std::string two_rules = core::SerializeRules(
      {model_->constraints[0], model_->constraints[0]});
  WriteFile(path, one_rule);
  SnapshotStore store(evals_, path);
  ASSERT_TRUE(store.TryReload().ok());
  ASSERT_EQ(store.Get()->predictor().num_rules(), 1u);

  ServeOptions options;
  const std::string payload = CheckPayload();

  std::atomic<bool> done{false};
  std::thread reloader([&] {
    for (int i = 0; i < 30; ++i) {
      WriteFile(path, i % 2 == 0 ? two_rules : one_rule);
      EXPECT_TRUE(store.TryReload().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true, std::memory_order_relaxed);
  });

  constexpr size_t kClients = 4;
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> observed(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!done.load(std::memory_order_relaxed)) {
        Response response = HandlePayload(payload, store, options, -1);
        ASSERT_EQ(response.code, StatusCode::kOk);
        observed[c].emplace_back(
            std::stoull(std::string(response.Field("version"))),
            std::stoull(std::string(response.Field("rules"))));
      }
    });
  }
  reloader.join();
  for (auto& t : clients) t.join();

  // Invariant: one version, one rule count — a response stamped with
  // version v but serving the other file's rules would show up here as a
  // second count for v.
  std::map<uint64_t, std::set<uint64_t>> counts_by_version;
  size_t total = 0;
  for (const auto& per_client : observed) {
    total += per_client.size();
    for (const auto& [version, rules] : per_client) {
      counts_by_version[version].insert(rules);
    }
  }
  EXPECT_GT(total, 0u);
  for (const auto& [version, counts] : counts_by_version) {
    EXPECT_EQ(counts.size(), 1u)
        << "version " << version << " served mixed rule counts";
    EXPECT_TRUE(*counts.begin() == 1u || *counts.begin() == 2u)
        << "version " << version << " served " << *counts.begin()
        << " rules";
  }
}

// ---------------------------------------------------------- failpoints --

TEST_F(ServeTest, InjectedReadFaultYieldsStructuredErrorNotACrash) {
  const std::string path = "/tmp/autotest_serve_fp_read.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  options.max_inflight = 1;
  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("serve.read=on").ok());
  const uint64_t read_errors_before =
      CounterValue(metrics::kMServeReadErrors);
  int fd = MustConnect(server.port());
  SendPayload(fd, PingPayload());
  Response response = MustReadResponse(fd);
  EXPECT_EQ(response.code, StatusCode::kIoError);
  EXPECT_NE(response.body.find("serve.read"), std::string::npos);
  ::close(fd);
  EXPECT_GE(CounterValue(metrics::kMServeReadErrors),
            read_errors_before + 1);
  reg.Disarm();

  // Disarmed, the same exchange succeeds: the fault was injected, not
  // structural.
  fd = MustConnect(server.port());
  SendPayload(fd, PingPayload());
  EXPECT_EQ(MustReadResponse(fd).code, StatusCode::kOk);
  ::close(fd);
  (void)server.StopAndDrain();
}

TEST_F(ServeTest, InjectedAcceptFaultDropsConnectionButServerSurvives) {
  const std::string path = "/tmp/autotest_serve_fp_accept.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  options.max_inflight = 1;
  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("serve.accept=on").ok());
  const uint64_t accept_errors_before =
      CounterValue(metrics::kMServeAcceptErrors);
  int fd = MustConnect(server.port());
  SendPayload(fd, PingPayload());
  // The injected accept fault closes the connection without a response;
  // the client sees clean data loss, not a stuck read.
  auto frame = TryReadFrame(fd, 1 << 20);
  EXPECT_FALSE(frame.ok());
  ::close(fd);
  for (int i = 0; i < 5000 && CounterValue(metrics::kMServeAcceptErrors) ==
                                  accept_errors_before;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(CounterValue(metrics::kMServeAcceptErrors),
            accept_errors_before + 1);
  reg.Disarm();

  fd = MustConnect(server.port());
  SendPayload(fd, PingPayload());
  EXPECT_EQ(MustReadResponse(fd).code, StatusCode::kOk);
  ::close(fd);
  (void)server.StopAndDrain();
}

// ---------------------------------------------------------- governance --
// Per-request budgets, per-tenant quotas and circuit breakers
// (DESIGN.md §4j).

TEST_F(ServeTest, WireTenantFieldRoundTripsAndValidates) {
  Request request;
  request.verb = "ping";
  request.tenant = "team-a.prod_1";
  auto parsed = TryParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, "team-a.prod_1");

  // No tenant field at all is the anonymous tenant, not an error.
  Request anonymous;
  anonymous.verb = "ping";
  auto parsed_anon = TryParseRequest(SerializeRequest(anonymous));
  ASSERT_TRUE(parsed_anon.ok());
  EXPECT_TRUE(parsed_anon->tenant.empty());

  // The tenant becomes server-side map key material, so hostile values
  // are rejected at the parse boundary.
  const std::vector<std::string> bad_fields = {
      "tenant=sp ace", "tenant=semi;colon", "tenant=",
      "tenant=" + std::string(kMaxTenantBytes + 1, 'a')};
  for (const std::string& bad : bad_fields) {
    auto r = TryParseRequest("autotest.serve.v1 ping\n" + bad + "\n\n");
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST_F(ServeTest, OverBudgetRequestBodyIsRejectedStructurally) {
  const std::string path = "/tmp/autotest_serve_budget_body.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  options.max_request_bytes = 16;  // smaller than any real table

  const uint64_t rejections_before =
      CounterValue(metrics::kMServeBudgetRejections);
  Response response = HandlePayload(CheckPayload(), *store, options, -1);
  EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(response.Field("reason"), "budget");
  EXPECT_NE(response.body.find("request body"), std::string::npos)
      << response.body;
  EXPECT_EQ(CounterValue(metrics::kMServeBudgetRejections),
            rejections_before + 1);
}

TEST_F(ServeTest, RowBudgetStopsTheParserMidTable) {
  const std::string path = "/tmp/autotest_serve_budget_rows.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  options.max_request_rows = 2;  // SampleCsv has a header + 4 data rows

  const uint64_t rejections_before =
      CounterValue(metrics::kMServeBudgetRejections);
  Response response = HandlePayload(CheckPayload(), *store, options, -1);
  EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(response.Field("reason"), "budget");
  EXPECT_NE(response.body.find("rows"), std::string::npos) << response.body;
  EXPECT_EQ(CounterValue(metrics::kMServeBudgetRejections),
            rejections_before + 1);
}

TEST_F(ServeTest, CsvCapsDerivedFromBudgetAreAlwaysEnforced) {
  const std::string path = "/tmp/autotest_serve_budget_cols.sdc";
  auto store = MakeLoadedStore(path);
  ServeOptions options;
  // The cell allowance bounds max_columns handed to the parser, so one
  // absurdly wide row dies inside the parser's own cap — before the
  // fields are even materialized.
  options.max_request_cells = 3;

  Request request;
  request.verb = "check";
  request.body = "a,b,c,d,e\n1,2,3,4,5\n";
  Response response = HandlePayload(SerializeRequest(request), *store,
                                    options, -1);
  EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
  EXPECT_NE(response.body.find("max_columns"), std::string::npos)
      << response.body;
}

TEST_F(ServeTest, BreakerTripsAtThresholdShedsAndRecovers) {
  const std::string path = "/tmp/autotest_serve_breaker.sdc";
  auto store = MakeLoadedStore(path);
  util::VirtualClock clock;
  util::CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  breaker_options.cooldown_micros = 1'000'000;
  TenantGovernor governor(breaker_options, &clock);
  ServeOptions options;
  options.clock = &clock;
  options.governor = &governor;

  Request bad;
  bad.verb = "check";
  bad.tenant = "bad-actor";
  bad.body = "city\n\"unterminated\n";  // kDataLoss at parse
  Request good;
  good.verb = "check";
  good.tenant = "bad-actor";
  good.body = SampleCsv();

  const uint64_t opened_before =
      CounterValue(metrics::kMServeBreakerOpenTotal);
  const uint64_t rejected_before =
      CounterValue(metrics::kMServeBreakerRejections);
  const uint64_t closed_before =
      CounterValue(metrics::kMServeBreakerClosedTotal);

  // Exactly N consecutive failing requests trip the tenant's breaker.
  for (int i = 0; i < 2; ++i) {
    Response r = HandlePayload(SerializeRequest(bad), *store, options, -1);
    EXPECT_EQ(r.code, StatusCode::kDataLoss);
  }
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerOpenTotal),
            opened_before + 1);

  // Open: even a well-formed request from that tenant is shed before any
  // predictor work is scheduled.
  Response shed = HandlePayload(SerializeRequest(good), *store, options, -1);
  EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.Field("reason"), "circuit_open");
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerRejections),
            rejected_before + 1);

  // Another tenant is untouched: breakers are keyed per tenant.
  Request other = good;
  other.tenant = "good-actor";
  EXPECT_EQ(HandlePayload(SerializeRequest(other), *store, options, -1).code,
            StatusCode::kOk);

  // The cooldown lapses, the probe succeeds, the breaker closes.
  clock.Advance(1'000'001);
  EXPECT_EQ(HandlePayload(SerializeRequest(good), *store, options, -1).code,
            StatusCode::kOk);
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerClosedTotal),
            closed_before + 1);
  EXPECT_EQ(HandlePayload(SerializeRequest(good), *store, options, -1).code,
            StatusCode::kOk);
}

TEST_F(ServeTest, TenantQuotaShedsTheGreedyTenantOnlyAndHotReloads) {
  const std::string path = "/tmp/autotest_serve_quota.sdc";
  const std::string quota_path = "/tmp/autotest_serve_quota.conf";
  auto store = MakeLoadedStore(path);
  util::VirtualClock clock;
  TenantGovernor governor(util::CircuitBreakerOptions{}, &clock);
  WriteFile(quota_path,
            "autotest.quotas.v1\n"
            "# rate 0 = a hard allowance until reload\n"
            "greedy 0 2\n");
  ASSERT_TRUE(governor.TryLoadQuotas(quota_path).ok());
  ServeOptions options;
  options.clock = &clock;
  options.governor = &governor;

  Request greedy;
  greedy.verb = "ping";
  greedy.tenant = "greedy";
  Request polite;
  polite.verb = "ping";
  polite.tenant = "polite";

  const uint64_t rejections_before =
      CounterValue(metrics::kMServeTenantRejections);
  // The burst admits exactly two requests; the third is shed with
  // reason=quota.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(
        HandlePayload(SerializeRequest(greedy), *store, options, -1).code,
        StatusCode::kOk);
  }
  Response shed =
      HandlePayload(SerializeRequest(greedy), *store, options, -1);
  EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.Field("reason"), "quota");
  EXPECT_EQ(CounterValue(metrics::kMServeTenantRejections),
            rejections_before + 1);

  // An unlisted tenant (no `default` row) is unlimited: tenant A
  // exhausting its bucket never touches tenant B.
  EXPECT_EQ(
      HandlePayload(SerializeRequest(polite), *store, options, -1).code,
      StatusCode::kOk);

  // A malformed replacement file keeps the old table serving.
  WriteFile(quota_path, "not a quota file\n");
  EXPECT_FALSE(governor.TryReloadQuotas().ok());
  EXPECT_EQ(
      HandlePayload(SerializeRequest(greedy), *store, options, -1).code,
      StatusCode::kResourceExhausted);

  // The `reload` verb refreshes rule set AND quotas in one request; the
  // refilled allowance admits the greedy tenant again.
  WriteFile(quota_path,
            "autotest.quotas.v1\n"
            "greedy 0 5\n");
  Request reload;
  reload.verb = "reload";
  Response reloaded =
      HandlePayload(SerializeRequest(reload), *store, options, -1);
  EXPECT_EQ(reloaded.code, StatusCode::kOk) << reloaded.body;
  EXPECT_EQ(
      HandlePayload(SerializeRequest(greedy), *store, options, -1).code,
      StatusCode::kOk);
}

TEST_F(ServeTest, ConcurrentOverBudgetRequestLeavesOtherTenantsUnharmed) {
  const std::string path = "/tmp/autotest_serve_budget_conc.sdc";
  auto store = MakeLoadedStore(path);

  WorkerLatch latch;
  util::CircuitBreakerOptions breaker_options;
  TenantGovernor governor(breaker_options, &util::RealClock());
  ServeOptions options;
  options.max_inflight = 2;
  options.max_request_rows = 3;  // header + 2 data rows fit; SampleCsv not
  options.governor = &governor;
  options.phase_hook = [&latch](std::string_view phase) {
    latch.ParkOn(phase, "parse");
  };

  Server server(store.get(), options);
  util::Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  Request big;
  big.verb = "check";
  big.tenant = "heavy";
  big.body = SampleCsv();  // 5 rows: over the 3-row budget
  Request small;
  small.verb = "check";
  small.tenant = "light";
  small.body = "city,amount\nBeijing,1\n";  // 2 rows: in budget

  const uint64_t rejections_before =
      CounterValue(metrics::kMServeBudgetRejections);
  // Park both requests at the parse boundary so they are provably
  // in-flight at the same time, then release them together.
  const int big_fd = MustConnect(server.port());
  SendPayload(big_fd, SerializeRequest(big));
  const int small_fd = MustConnect(server.port());
  SendPayload(small_fd, SerializeRequest(small));
  latch.WaitParked(2);
  latch.Release();

  Response big_response = MustReadResponse(big_fd);
  Response small_response = MustReadResponse(small_fd);
  ::close(big_fd);
  ::close(small_fd);

  EXPECT_EQ(big_response.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(big_response.Field("reason"), "budget");
  EXPECT_EQ(small_response.code, StatusCode::kOk);
  EXPECT_EQ(small_response.Field("provenance"), "full");
  // Exactly the one over-budget request was rejected.
  EXPECT_EQ(CounterValue(metrics::kMServeBudgetRejections),
            rejections_before + 1);

  DrainReport report = server.StopAndDrain();
  EXPECT_EQ(report.completed, 2u);
}

}  // namespace
}  // namespace autotest::serve
