#include <gtest/gtest.h>

#include <cmath>

#include "embed/embedding.h"
#include "embed/vector_math.h"

namespace autotest::embed {
namespace {

TEST(VectorMathTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorMathTest, NormalizeAndScale) {
  Vector v = {3, 4};
  Normalize(&v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
  Scale(&v, 2.0);
  EXPECT_NEAR(Norm(v), 2.0, 1e-6);
  Vector zero = {0, 0};
  Normalize(&zero);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VectorMathTest, AddScaled) {
  Vector a = {1, 2};
  AddScaled(&a, {10, 10}, 0.5);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 7.0f);
}

TEST(VectorMathTest, HashGaussianUnitProperties) {
  Vector a = HashGaussianUnit("country", 1, 64);
  Vector b = HashGaussianUnit("country", 1, 64);
  Vector c = HashGaussianUnit("city", 1, 64);
  EXPECT_EQ(a, b);  // deterministic
  EXPECT_NEAR(Norm(a), 1.0, 1e-5);
  // Different keys are near-orthogonal in high dimension.
  EXPECT_LT(std::fabs(Dot(a, c)), 0.5);
}

TEST(VectorMathTest, LexicalVectorTypoCorrelation) {
  Vector a = LexicalVector("february", 7, 64);
  Vector b = LexicalVector("febuary", 7, 64);
  Vector c = LexicalVector("zxqwkjv", 7, 64);
  EXPECT_GT(Dot(a, b), 0.5);
  EXPECT_GT(Dot(a, b), Dot(a, c));
}

TEST(GloveSimTest, HeadValuesInVocabulary) {
  auto glove = MakeGloveSim();
  Vector v;
  EXPECT_TRUE(glove->Embed("germany", &v));
  EXPECT_TRUE(glove->Embed("january", &v));
  EXPECT_TRUE(glove->Embed("seattle", &v));
  EXPECT_EQ(v.size(), glove->dim());
}

TEST(GloveSimTest, RareAndUnknownValuesAreOov) {
  // The paper's Example 2: "omayra" (a valid but uncommon name) is not in
  // GloVe's vocabulary.
  auto glove = MakeGloveSim();
  Vector v;
  EXPECT_FALSE(glove->Embed("omayra", &v));      // tail member
  EXPECT_FALSE(glove->Embed("liechstein", &v));  // typo
  EXPECT_FALSE(glove->Embed("tt0054215", &v));   // machine id
}

TEST(GloveSimTest, SameDomainCloserThanCrossDomain) {
  auto glove = MakeGloveSim();
  double same = glove->Distance("germany", "france");
  double cross = glove->Distance("germany", "january");
  EXPECT_LT(same, cross);
  double oov = glove->Distance("germany", "liechstein");
  EXPECT_DOUBLE_EQ(oov, glove->oov_distance());
  EXPECT_GT(oov, cross);
}

TEST(SbertSimTest, OpenVocabulary) {
  auto sbert = MakeSbertSim();
  Vector v;
  EXPECT_TRUE(sbert->Embed("omayra", &v));
  EXPECT_TRUE(sbert->Embed("zz-unknown-string-42", &v));
  EXPECT_TRUE(sbert->Embed("seattle", &v));
}

TEST(SbertSimTest, CalibrationGeometry) {
  // The Figure-4 geometry: head values cluster tightly around a head
  // centroid, tail values form a middle ring, errors land far out.
  auto sbert = MakeSbertSim();
  double head = sbert->Distance("seattle", "chicago");       // head-head
  double tail = sbert->Distance("seattle", "shakopee");      // head-tail
  double typo = sbert->Distance("seattle", "farimont");      // error
  double alien = sbert->Distance("seattle", "fy definition");  // metadata
  EXPECT_LT(head, tail);
  EXPECT_LT(tail, typo);
  EXPECT_LT(tail, alien);
}

TEST(SbertSimTest, TypoOfTailStillFar) {
  auto sbert = MakeSbertSim();
  // "farimont" is a typo of tail city "fairmont": still farther from the
  // city centroid region than the tail value itself.
  double tail = sbert->Distance("seattle", "fairmont");
  double typo = sbert->Distance("seattle", "farimont");
  EXPECT_LT(tail, typo);
}

TEST(SbertSimTest, CrossDomainFar) {
  auto sbert = MakeSbertSim();
  double same = sbert->Distance("january", "march");
  double cross = sbert->Distance("january", "red");
  EXPECT_LT(same, cross);
}

TEST(EmbeddingTest, Deterministic) {
  auto a = MakeSbertSim();
  auto b = MakeSbertSim();
  EXPECT_DOUBLE_EQ(a->Distance("seattle", "chicago"),
                   b->Distance("seattle", "chicago"));
}

}  // namespace
}  // namespace autotest::embed
