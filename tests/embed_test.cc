#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "embed/embedding.h"
#include "embed/vector_math.h"

namespace autotest::embed {
namespace {

TEST(VectorMathTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorMathTest, NormalizeAndScale) {
  Vector v = {3, 4};
  Normalize(&v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
  Scale(&v, 2.0);
  EXPECT_NEAR(Norm(v), 2.0, 1e-6);
  Vector zero = {0, 0};
  Normalize(&zero);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VectorMathTest, AddScaled) {
  Vector a = {1, 2};
  AddScaled(&a, {10, 10}, 0.5);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 7.0f);
}

TEST(VectorMathTest, HashGaussianUnitProperties) {
  Vector a = HashGaussianUnit("country", 1, 64);
  Vector b = HashGaussianUnit("country", 1, 64);
  Vector c = HashGaussianUnit("city", 1, 64);
  EXPECT_EQ(a, b);  // deterministic
  EXPECT_NEAR(Norm(a), 1.0, 1e-5);
  // Different keys are near-orthogonal in high dimension.
  EXPECT_LT(std::fabs(Dot(a, c)), 0.5);
}

TEST(VectorMathTest, LexicalVectorTypoCorrelation) {
  Vector a = LexicalVector("february", 7, 64);
  Vector b = LexicalVector("febuary", 7, 64);
  Vector c = LexicalVector("zxqwkjv", 7, 64);
  EXPECT_GT(Dot(a, b), 0.5);
  EXPECT_GT(Dot(a, b), Dot(a, c));
}

TEST(GloveSimTest, HeadValuesInVocabulary) {
  auto glove = MakeGloveSim();
  Vector v;
  EXPECT_TRUE(glove->Embed("germany", &v));
  EXPECT_TRUE(glove->Embed("january", &v));
  EXPECT_TRUE(glove->Embed("seattle", &v));
  EXPECT_EQ(v.size(), glove->dim());
}

TEST(GloveSimTest, RareAndUnknownValuesAreOov) {
  // The paper's Example 2: "omayra" (a valid but uncommon name) is not in
  // GloVe's vocabulary.
  auto glove = MakeGloveSim();
  Vector v;
  EXPECT_FALSE(glove->Embed("omayra", &v));      // tail member
  EXPECT_FALSE(glove->Embed("liechstein", &v));  // typo
  EXPECT_FALSE(glove->Embed("tt0054215", &v));   // machine id
}

TEST(GloveSimTest, SameDomainCloserThanCrossDomain) {
  auto glove = MakeGloveSim();
  double same = glove->Distance("germany", "france");
  double cross = glove->Distance("germany", "january");
  EXPECT_LT(same, cross);
  double oov = glove->Distance("germany", "liechstein");
  EXPECT_DOUBLE_EQ(oov, glove->oov_distance());
  EXPECT_GT(oov, cross);
}

TEST(SbertSimTest, OpenVocabulary) {
  auto sbert = MakeSbertSim();
  Vector v;
  EXPECT_TRUE(sbert->Embed("omayra", &v));
  EXPECT_TRUE(sbert->Embed("zz-unknown-string-42", &v));
  EXPECT_TRUE(sbert->Embed("seattle", &v));
}

TEST(SbertSimTest, CalibrationGeometry) {
  // The Figure-4 geometry: head values cluster tightly around a head
  // centroid, tail values form a middle ring, errors land far out.
  auto sbert = MakeSbertSim();
  double head = sbert->Distance("seattle", "chicago");       // head-head
  double tail = sbert->Distance("seattle", "shakopee");      // head-tail
  double typo = sbert->Distance("seattle", "farimont");      // error
  double alien = sbert->Distance("seattle", "fy definition");  // metadata
  EXPECT_LT(head, tail);
  EXPECT_LT(tail, typo);
  EXPECT_LT(tail, alien);
}

TEST(SbertSimTest, TypoOfTailStillFar) {
  auto sbert = MakeSbertSim();
  // "farimont" is a typo of tail city "fairmont": still farther from the
  // city centroid region than the tail value itself.
  double tail = sbert->Distance("seattle", "fairmont");
  double typo = sbert->Distance("seattle", "farimont");
  EXPECT_LT(tail, typo);
}

TEST(SbertSimTest, CrossDomainFar) {
  auto sbert = MakeSbertSim();
  double same = sbert->Distance("january", "march");
  double cross = sbert->Distance("january", "red");
  EXPECT_LT(same, cross);
}

TEST(EmbeddingTest, Deterministic) {
  auto a = MakeSbertSim();
  auto b = MakeSbertSim();
  EXPECT_DOUBLE_EQ(a->Distance("seattle", "chicago"),
                   b->Distance("seattle", "chicago"));
}

// Mixed embeddable / OOV probe set. GloveSim has a closed vocabulary, so
// "zqxv-not-a-word" and tail-ish strings exercise the ok == 0 rows.
std::vector<std::string> BlockProbeValues() {
  return {"seattle", "zqxv-not-a-word", "chicago", "", "france",
          "12345",   "seattle"};
}

TEST(EmbeddingTest, BlockCachedMatchesPerValueEmbed) {
  for (auto maker : {MakeGloveSim, MakeSbertSim}) {
    auto model = maker(0x1ab);
    const std::vector<std::string> values = BlockProbeValues();
    std::vector<std::string_view> views(values.begin(), values.end());
    const size_t d = model->dim();
    std::vector<float> rows(views.size() * d);
    std::vector<uint8_t> ok(views.size());
    model->EmbedBlockCached(views, rows.data(), ok.data());
    for (size_t i = 0; i < values.size(); ++i) {
      Vector v;
      bool embeddable = model->EmbedCached(values[i], &v);
      ASSERT_EQ(ok[i] != 0, embeddable) << model->name() << " " << values[i];
      if (embeddable) {
        ASSERT_EQ(v.size(), d);
        for (size_t j = 0; j < d; ++j) {
          EXPECT_EQ(rows[i * d + j], v[j]) << values[i];  // bit-identical
        }
      } else {
        for (size_t j = 0; j < d; ++j) EXPECT_EQ(rows[i * d + j], 0.0f);
      }
    }
  }
}

TEST(EmbeddingTest, BlockSharedMatchesBlockCachedAndMemoizes) {
  auto model = MakeSbertSim(0x2cd);
  const std::vector<std::string> values = BlockProbeValues();
  std::vector<std::string_view> views(values.begin(), values.end());
  const size_t d = model->dim();
  std::vector<float> rows(views.size() * d);
  std::vector<uint8_t> ok(views.size());
  model->EmbedBlockCached(views, rows.data(), ok.data());

  auto blk = model->EmbedBlockShared(views, /*pool_id=*/42, /*offset=*/0);
  ASSERT_NE(blk, nullptr);
  ASSERT_EQ(blk->rows.size(), rows.size());
  ASSERT_EQ(blk->ok.size(), ok.size());
  EXPECT_EQ(std::memcmp(blk->rows.data(), rows.data(),
                        rows.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(blk->ok.data(), ok.data(), ok.size()), 0);

  // Same (pool_id, offset) must return the memoized block itself; a
  // different offset is a different slice and must not alias it.
  auto again = model->EmbedBlockShared(views, 42, 0);
  EXPECT_EQ(blk.get(), again.get());
  auto other = model->EmbedBlockShared(views, 42, 7);
  EXPECT_NE(blk.get(), other.get());
}

TEST(EmbeddingTest, SharedModelsAreProcessSingletons) {
  EXPECT_EQ(SharedGloveSim().get(), SharedGloveSim().get());
  EXPECT_EQ(SharedSbertSim().get(), SharedSbertSim().get());
  // Shared instances embed exactly like fresh default-seed models.
  auto fresh = MakeSbertSim();
  EXPECT_DOUBLE_EQ(SharedSbertSim()->Distance("seattle", "chicago"),
                   fresh->Distance("seattle", "chicago"));
}

}  // namespace
}  // namespace autotest::embed
