// util/retry: deterministic backoff schedules, virtual-time deadline
// enforcement, and retry/fail-fast classification (ISSUE 4, satellite S3).
//
// Everything here runs against a VirtualClock: the suite proves the whole
// backoff/deadline machinery without sleeping a single real microsecond.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "util/retry.h"
#include "util/status.h"

namespace autotest::util {
namespace {

TEST(RetryPolicyTest, SameSeedGivesByteIdenticalSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.seed = 42;
  const std::vector<int64_t> a = BackoffScheduleMicros(policy, /*stream=*/7);
  const std::vector<int64_t> b = BackoffScheduleMicros(policy, /*stream=*/7);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);

  // A different seed (or stream) decorrelates the jitter.
  policy.seed = 43;
  EXPECT_NE(BackoffScheduleMicros(policy, 7), a);
  policy.seed = 42;
  EXPECT_NE(BackoffScheduleMicros(policy, 8), a);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 1'000'000;
  policy.jitter_fraction = 0.25;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    const double nominal = 1000.0 * std::pow(2.0, attempt - 1);
    const int64_t b = BackoffMicros(policy, /*stream=*/0, attempt);
    EXPECT_GE(b, static_cast<int64_t>(nominal * 0.75)) << attempt;
    EXPECT_LE(b, static_cast<int64_t>(nominal * 1.25) + 1) << attempt;
  }
}

TEST(RetryPolicyTest, BackoffIsClampedAtMax) {
  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_micros = 50'000;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(BackoffMicros(policy, 0, 10), 50'000);
}

TEST(RetryPolicyTest, RetryableCodeClassification) {
  EXPECT_TRUE(IsRetryableCode(StatusCode::kIoError));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kOk));
}

TEST(RetryCallTest, TransientErrorsAreRetriedUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  VirtualClock clock;
  int calls = 0;
  size_t attempts = 0;
  Status st = RetryCall(policy, clock, /*stream=*/0,
                        [&]() -> Status {
                          if (++calls < 3) return IoError("flaky");
                          return Status::Ok();
                        },
                        &attempts);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(clock.sleep_calls(), 2u);  // two backoffs, both virtual
}

TEST(RetryCallTest, PermanentErrorsFailFast) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  VirtualClock clock;
  int calls = 0;
  Status st = RetryCall(policy, clock, 0, [&]() -> Status {
    ++calls;
    return DataLossError("corrupt bytes");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);  // no second attempt for a permanent code
  EXPECT_EQ(clock.slept_micros(), 0);
}

TEST(RetryCallTest, GivesUpAfterMaxAttemptsWithContext) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  VirtualClock clock;
  int calls = 0;
  Status st = RetryCall(policy, clock, 0, [&]() -> Status {
    ++calls;
    return IoError("still down");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(st.context().size(), 1u);
  EXPECT_NE(st.context()[0].find("gave up after 3 attempts"),
            std::string::npos);
  EXPECT_EQ(clock.sleep_calls(), 2u);
}

TEST(RetryCallTest, DeadlineIsHonoredInVirtualTimeWithZeroRealSleep) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_micros = 10'000;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  policy.deadline_micros = 35'000;  // covers 10ms + 20ms, not +40ms
  VirtualClock clock;
  int calls = 0;
  Status st = RetryCall(policy, clock, 0, [&]() -> Status {
    ++calls;
    return IoError("slow disk");
  });
  EXPECT_FALSE(st.ok());
  // Attempt 1 (sleep 10ms), attempt 2 (sleep 20ms), attempt 3 — the next
  // 40ms backoff would overrun the 35ms budget, so it returns instead.
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.slept_micros(), 30'000);
  ASSERT_EQ(st.context().size(), 1u);
  EXPECT_NE(st.context()[0].find("deadline budget"), std::string::npos);
}

TEST(RetryCallTest, WorksWithResultValues) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  VirtualClock clock;
  int calls = 0;
  auto r = RetryCall(policy, clock, 0, [&]() -> Result<std::string> {
    if (++calls < 2) return ResourceExhaustedError("busy");
    return std::string("payload");
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "payload");
  EXPECT_EQ(calls, 2);
}

TEST(RetryCallTest, MaxAttemptsBelowOneBehavesAsOne) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  VirtualClock clock;
  int calls = 0;
  Status st = RetryCall(policy, clock, 0, [&]() -> Status {
    ++calls;
    return IoError("down");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(VirtualClockTest, ConcurrentAdvanceSleepAndReadStayCoherent) {
  // The serving tier reads one shared clock from the acceptor, every
  // worker and the drain path at once; this test (run under TSan in CI)
  // proves VirtualClock is safe to share that way. Each thread alternates
  // Advance(3) and SleepMicros(2) and checks its reads never go
  // backwards; the totals must account for every call exactly.
  VirtualClock clock;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      int64_t last = 0;
      for (int i = 0; i < kIters; ++i) {
        if (i % 2 == 0) {
          clock.Advance(3);
        } else {
          clock.SleepMicros(2);
        }
        const int64_t now = clock.NowMicros();
        EXPECT_GE(now, last);
        last = now;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr int64_t kPerThread = (kIters / 2) * (3 + 2);
  EXPECT_EQ(clock.NowMicros(), kThreads * kPerThread);
  EXPECT_EQ(clock.sleep_calls(),
            static_cast<size_t>(kThreads) * (kIters / 2));
  EXPECT_EQ(clock.slept_micros(),
            static_cast<int64_t>(kThreads) * (kIters / 2) * 2);
}

TEST(VirtualClockTest, AdvanceMovesTimeWithoutCountingSleeps) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(500);
  EXPECT_EQ(clock.NowMicros(), 500);
  EXPECT_EQ(clock.sleep_calls(), 0u);
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 750);
  EXPECT_EQ(clock.slept_micros(), 250);
  EXPECT_EQ(clock.sleep_calls(), 1u);
}

}  // namespace
}  // namespace autotest::util
