#include <gtest/gtest.h>

#include "datagen/bench_gen.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace autotest::eval {
namespace {

ScoredPrediction Pred(double score, bool correct) {
  ScoredPrediction p;
  p.score = score;
  p.is_true_error = correct;
  return p;
}

TEST(MetricsTest, PerfectDetector) {
  std::vector<ScoredPrediction> preds = {Pred(0.9, true), Pred(0.8, true)};
  PrCurve c = ComputePrCurve(preds, 2);
  EXPECT_NEAR(c.auc, 1.0, 1e-9);
  EXPECT_NEAR(F1AtPrecision(c, 0.8), 1.0, 1e-9);
}

TEST(MetricsTest, AllWrongDetector) {
  std::vector<ScoredPrediction> preds = {Pred(0.9, false), Pred(0.8, false)};
  PrCurve c = ComputePrCurve(preds, 5);
  EXPECT_DOUBLE_EQ(c.auc, 0.0);
  EXPECT_DOUBLE_EQ(F1AtPrecision(c), 0.0);
}

TEST(MetricsTest, MixedCurveShape) {
  // hit, miss, hit with 4 total true errors.
  std::vector<ScoredPrediction> preds = {Pred(0.9, true), Pred(0.8, false),
                                         Pred(0.7, true)};
  PrCurve c = ComputePrCurve(preds, 4);
  ASSERT_EQ(c.points.size(), 3u);
  EXPECT_DOUBLE_EQ(c.points[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(c.points[0].recall, 0.25);
  EXPECT_DOUBLE_EQ(c.points[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(c.points[2].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.points[2].recall, 0.5);
  // AUC = 0.25*1.0 + 0*0.5 + 0.25*(2/3).
  EXPECT_NEAR(c.auc, 0.25 + 0.25 * 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, TiesProcessedTogether) {
  // Flat scores (like the LLM baseline) collapse to one operating point.
  std::vector<ScoredPrediction> preds = {Pred(1.0, true), Pred(1.0, false),
                                         Pred(1.0, true)};
  PrCurve c = ComputePrCurve(preds, 3);
  ASSERT_EQ(c.points.size(), 1u);
  EXPECT_NEAR(c.points[0].precision, 2.0 / 3.0, 1e-9);
  // Precision 0.67 < 0.8 -> F1@P=0.8 is 0, matching the paper's GPT rows.
  EXPECT_DOUBLE_EQ(F1AtPrecision(c, 0.8), 0.0);
}

TEST(MetricsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(ComputePrCurve({}, 10).auc, 0.0);
  EXPECT_DOUBLE_EQ(ComputePrCurve({Pred(1, true)}, 0).auc, 0.0);
}

TEST(MetricsTest, PrecisionRecallFixedSet) {
  std::vector<ScoredPrediction> preds = {Pred(1, true), Pred(1, false),
                                         Pred(1, true), Pred(1, true)};
  PrecisionRecall pr = ComputePrecisionRecall(preds, 6);
  EXPECT_DOUBLE_EQ(pr.precision, 0.75);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_EQ(pr.true_positives, 3u);
}

// A detector that flags exactly the labeled errors (cheats via closure).
class OracleDetector : public ErrorDetector {
 public:
  explicit OracleDetector(const datagen::LabeledBenchmark* bench)
      : bench_(bench) {}
  std::string name() const override { return "oracle"; }
  std::vector<ScoredCell> Detect(const table::Column& column) const override {
    for (const auto& lc : bench_->columns) {
      if (&lc.column == &column) {
        std::vector<ScoredCell> out;
        for (size_t r : lc.error_rows) out.push_back({r, 1.0});
        return out;
      }
    }
    // Columns are matched by address; fall back to name comparison.
    for (const auto& lc : bench_->columns) {
      if (lc.column.name == column.name &&
          lc.column.values == column.values) {
        std::vector<ScoredCell> out;
        for (size_t r : lc.error_rows) out.push_back({r, 1.0});
        return out;
      }
    }
    return {};
  }

 private:
  const datagen::LabeledBenchmark* bench_;
};

class SilentDetector : public ErrorDetector {
 public:
  std::string name() const override { return "silent"; }
  std::vector<ScoredCell> Detect(const table::Column&) const override {
    return {};
  }
};

TEST(HarnessTest, OracleGetsPerfectScores) {
  auto bench = datagen::GenerateBenchmark(datagen::StBenchProfile(150, 77));
  OracleDetector oracle(&bench);
  BenchmarkRun run = RunDetector(oracle, bench, 2);
  EXPECT_EQ(run.total_true_errors, bench.TotalErrors());
  EXPECT_NEAR(run.pr_auc, 1.0, 1e-9);
  EXPECT_NEAR(run.f1_at_p08, 1.0, 1e-9);
}

TEST(HarnessTest, SilentDetectorScoresZero) {
  auto bench = datagen::GenerateBenchmark(datagen::StBenchProfile(100, 78));
  SilentDetector silent;
  BenchmarkRun run = RunDetector(silent, bench, 2);
  EXPECT_DOUBLE_EQ(run.pr_auc, 0.0);
  EXPECT_DOUBLE_EQ(run.f1_at_p08, 0.0);
  EXPECT_EQ(run.num_predictions, 0u);
}

TEST(HarnessTest, FormatHelpers) {
  BenchmarkRun run;
  run.f1_at_p08 = 0.34;
  run.pr_auc = 0.45;
  EXPECT_EQ(FormatQuality(run), "0.34, 0.45");
  std::string row = FormatTableRow("fine-select", {run, run});
  EXPECT_NE(row.find("fine-select"), std::string::npos);
  EXPECT_NE(row.find("0.34, 0.45"), std::string::npos);
}

}  // namespace
}  // namespace autotest::eval
