// Property-based tests over the generator/validator/metric invariants,
// using parameterized gtest sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "core/sdc.h"
#include "core/selection.h"
#include "core/trainer.h"
#include "datagen/column_gen.h"
#include "datagen/corpus_gen.h"
#include "datagen/gazetteer.h"
#include "eval/metrics.h"
#include "pattern/pattern.h"
#include "stats/statistics.h"
#include "typedet/eval_functions.h"
#include "typedet/validators.h"
#include "util/failpoint.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace autotest {
namespace {

// ---------------------------------------------------------------------------
// Property: every value a machine generator emits passes the matching
// validation function (validators and generators agree on the formats).
// ---------------------------------------------------------------------------

struct DomainValidator {
  const char* domain;
  bool (*validate)(std::string_view);
};

class GeneratorValidatorTest
    : public ::testing::TestWithParam<DomainValidator> {};

TEST_P(GeneratorValidatorTest, GeneratedValuesValidate) {
  const auto& p = GetParam();
  const datagen::Domain* d = datagen::Gazetteer::Instance().Find(p.domain);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->has_generator());
  util::Rng rng(0xabc);
  for (int i = 0; i < 300; ++i) {
    std::string v = d->generator(rng);
    EXPECT_TRUE(p.validate(v)) << p.domain << ": " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachineDomains, GeneratorValidatorTest,
    ::testing::Values(
        DomainValidator{"date_mdy", &typedet::ValidateDate},
        DomainValidator{"date_iso", &typedet::ValidateDate},
        DomainValidator{"time_hm", &typedet::ValidateTime},
        DomainValidator{"datetime_iso", &typedet::ValidateDateTime},
        DomainValidator{"url", &typedet::ValidateUrl},
        DomainValidator{"email", &typedet::ValidateEmail},
        DomainValidator{"ipv4", &typedet::ValidateIpv4},
        DomainValidator{"uuid", &typedet::ValidateUuid},
        DomainValidator{"credit_card", &typedet::ValidateCreditCard},
        DomainValidator{"upc", &typedet::ValidateUpc},
        DomainValidator{"isbn13", &typedet::ValidateIsbn13},
        DomainValidator{"phone_us", &typedet::ValidatePhoneUs},
        DomainValidator{"percent", &typedet::ValidatePercent},
        DomainValidator{"hex_color", &typedet::ValidateHexColor},
        DomainValidator{"mac_address", &typedet::ValidateMacAddress},
        DomainValidator{"web_domain", &typedet::ValidateWebDomain},
        DomainValidator{"iban", &typedet::ValidateIban},
        DomainValidator{"version_number", &typedet::ValidateVersion},
        DomainValidator{"lat_lon", &typedet::ValidateLatLon}),
    [](const ::testing::TestParamInfo<DomainValidator>& info) {
      return info.param.domain;
    });

// ---------------------------------------------------------------------------
// Property: every generated value matches its own pattern generalization,
// at both levels, across every domain.
// ---------------------------------------------------------------------------

class GeneralizationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneralizationTest, SelfMatch) {
  const datagen::Domain* d =
      datagen::Gazetteer::Instance().Find(GetParam());
  ASSERT_NE(d, nullptr);
  util::Rng rng(0x123);
  datagen::ColumnGenOptions opt;
  opt.min_values = 60;
  opt.max_values = 60;
  table::Column col = datagen::GenerateColumn(*d, opt, rng);
  for (const auto& v : col.values) {
    EXPECT_TRUE(pattern::Generalize(
                    v, pattern::GeneralizationLevel::kExactDigits)
                    .Matches(v))
        << v;
    EXPECT_TRUE(
        pattern::Generalize(v, pattern::GeneralizationLevel::kGeneral)
            .Matches(v))
        << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SampledDomains, GeneralizationTest,
    ::testing::Values("country", "city_us", "first_name", "date_mdy", "url",
                      "email", "gene", "article_number", "money_usd",
                      "percent", "phone_us", "age_range"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Property: PR-curve invariants hold on random prediction sets.
// ---------------------------------------------------------------------------

class PrCurvePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrCurvePropertyTest, Invariants) {
  util::Rng rng(GetParam());
  std::vector<eval::ScoredPrediction> preds;
  size_t total_true = 40;
  for (int i = 0; i < 300; ++i) {
    eval::ScoredPrediction p;
    p.score = rng.UniformDouble();
    p.is_true_error = rng.Bernoulli(0.1);
    preds.push_back(p);
  }
  size_t hits = 0;
  for (const auto& p : preds) {
    if (p.is_true_error) ++hits;
  }
  total_true = std::max(total_true, hits);
  eval::PrCurve curve = eval::ComputePrCurve(preds, total_true);
  double prev_recall = 0.0;
  double prev_threshold = 2.0;
  for (const auto& pt : curve.points) {
    EXPECT_GE(pt.recall, prev_recall - 1e-12);   // recall non-decreasing
    EXPECT_LT(pt.threshold, prev_threshold);      // thresholds descending
    EXPECT_GE(pt.precision, 0.0);
    EXPECT_LE(pt.precision, 1.0);
    prev_recall = pt.recall;
    prev_threshold = pt.threshold;
  }
  EXPECT_GE(curve.auc, 0.0);
  EXPECT_LE(curve.auc, 1.0 + 1e-12);
  EXPECT_LE(eval::F1AtPrecision(curve, 0.8), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrCurvePropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Property: Wilson lower bound never exceeds the raw proportion and grows
// with evidence.
// ---------------------------------------------------------------------------

class WilsonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WilsonPropertyTest, LowerBoundBelowRatio) {
  int trials = GetParam();
  for (int successes = 0; successes <= trials; ++successes) {
    double lb = stats::WilsonLowerBound(successes, trials, 1.65);
    double ratio = static_cast<double>(successes) / trials;
    EXPECT_LE(lb, ratio + 1e-12);
    EXPECT_GE(lb, 0.0);
    // More evidence at the same proportion tightens the bound.
    double lb10 = stats::WilsonLowerBound(successes * 10, trials * 10, 1.65);
    EXPECT_GE(lb10, lb - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(TrialCounts, WilsonPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 50, 200));

// ---------------------------------------------------------------------------
// Property: pre-condition monotonicity — growing the inner ball or
// loosening m can only keep/extend coverage.
// ---------------------------------------------------------------------------

class PreconditionMonotoneTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PreconditionMonotoneTest, Monotone) {
  util::Rng rng(GetParam());
  core::ColumnDistanceProfile profile;
  size_t n = 30;
  double acc = 0.0;
  size_t wacc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += rng.UniformDouble(0.0, 0.2);
    size_t w = static_cast<size_t>(rng.UniformInt(1, 5));
    profile.sorted_distances.push_back(acc);
    profile.sorted_weights.push_back(w);
    wacc += w;
    profile.prefix_weights.push_back(wacc);
  }
  profile.total_weight = wacc;
  for (int trial = 0; trial < 50; ++trial) {
    double d1 = rng.UniformDouble(0.0, acc);
    double d2 = rng.UniformDouble(d1, acc);
    double m1 = rng.UniformDouble(0.0, 1.0);
    double m2 = rng.UniformDouble(0.0, m1);
    if (profile.PreconditionHolds(d1, m1)) {
      EXPECT_TRUE(profile.PreconditionHolds(d2, m1));  // bigger ball
      EXPECT_TRUE(profile.PreconditionHolds(d1, m2));  // looser m
    }
    EXPECT_EQ(profile.CountWithin(d1) + profile.CountBeyond(d1),
              profile.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreconditionMonotoneTest,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Property: training is deterministic in the thread count. The parallel
// runtime writes per-function results to per-index slots and merges them
// in index order, so the trained model — constraints, calibrated
// confidences, detection lists — must be byte-identical for any
// num_threads. Exact (==) comparison on every double is intentional.
// ---------------------------------------------------------------------------

void ExpectSameModel(const core::TrainedModel& a,
                     const core::TrainedModel& b) {
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  ASSERT_EQ(a.detections.size(), b.detections.size());
  EXPECT_EQ(a.num_synthetic, b.num_synthetic);
  EXPECT_EQ(a.candidates_enumerated, b.candidates_enumerated);
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned);
  EXPECT_EQ(a.candidates_rejected, b.candidates_rejected);
  for (size_t i = 0; i < a.constraints.size(); ++i) {
    const core::Sdc& x = a.constraints[i];
    const core::Sdc& y = b.constraints[i];
    EXPECT_EQ(x.eval_index, y.eval_index) << i;
    EXPECT_EQ(x.d_in, y.d_in) << i;
    EXPECT_EQ(x.d_out, y.d_out) << i;
    EXPECT_EQ(x.m, y.m) << i;
    EXPECT_EQ(x.confidence, y.confidence) << i;
    EXPECT_EQ(x.fpr, y.fpr) << i;
    EXPECT_EQ(x.cohens_h, y.cohens_h) << i;
    EXPECT_EQ(x.chi_squared_p, y.chi_squared_p) << i;
    EXPECT_EQ(x.contingency.covered_triggered,
              y.contingency.covered_triggered)
        << i;
    EXPECT_EQ(x.contingency.covered_not_triggered,
              y.contingency.covered_not_triggered)
        << i;
    EXPECT_EQ(a.detections[i], b.detections[i]) << i;
  }
  EXPECT_EQ(a.synthetic_conf_all, b.synthetic_conf_all);
}

TEST(TrainingDeterminismTest, IdenticalModelAcrossThreadCounts) {
  auto corpus =
      datagen::GenerateCorpus(datagen::RelationalTablesProfile(150));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = 20;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);

  core::TrainOptions topt;
  topt.synthetic_count = 200;

  topt.num_threads = 1;
  core::TrainedModel m1 = core::TrainAutoTest(corpus, evals, topt);
  topt.num_threads = 2;
  core::TrainedModel m2 = core::TrainAutoTest(corpus, evals, topt);
  topt.num_threads = 8;
  core::TrainedModel m8 = core::TrainAutoTest(corpus, evals, topt);

  ASSERT_GT(m1.constraints.size(), 0u);
  ExpectSameModel(m1, m2);
  ExpectSameModel(m1, m8);

  // Selection consumes only per-rule slots, so it is thread-count
  // invariant too.
  core::SelectionOptions sopt;
  sopt.num_threads = 1;
  auto s1 = core::FineSelect(m1, sopt);
  sopt.num_threads = 8;
  auto s8 = core::FineSelect(m8, sopt);
  EXPECT_EQ(s1.selected, s8.selected);
  EXPECT_EQ(s1.lp_objective, s8.lp_objective);
}

// An eval function that deliberately has NO BatchDistance override, so the
// trainer's columnar path must route it through the base-class fallback
// loop (scalar Distance per value). Deterministic and cheap.
class ScalarOnlyEval : public typedet::DomainEvalFunction {
 public:
  ScalarOnlyEval()
      : DomainEvalFunction("test:scalar-only", typedet::Family::kHash) {}

  double Distance(const std::string& value) const override {
    return util::HashToUnitDouble(util::Fnv64Seeded(value, 0x5ca1a4));
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }
  std::string Describe() const override { return "scalar-only test eval"; }
};

// The columnar trainer path (use_columnar, DESIGN.md §4k) must produce a
// model byte-identical to the legacy per-column scalar reference: distinct
// counts weight the same threshold grids, BatchDistance overrides are
// bit-identical to Distance, and detection order is preserved. Swept over
// thread counts and block sizes (including a block size of 1, which
// stresses the (pool_id, offset) block-memo keying), with a registered
// eval function that lacks a BatchDistance override so the base-class
// fallback is exercised alongside the vectorized families.
TEST(TrainingDeterminismTest, ColumnarPathMatchesScalarReference) {
  auto corpus =
      datagen::GenerateCorpus(datagen::RelationalTablesProfile(150));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = 15;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  evals.Add(std::make_unique<ScalarOnlyEval>());

  core::TrainOptions topt;
  topt.synthetic_count = 200;
  topt.use_columnar = false;
  core::TrainedModel reference = core::TrainAutoTest(corpus, evals, topt);
  ASSERT_GT(reference.constraints.size(), 0u);

  topt.use_columnar = true;
  for (int threads : {1, 2, 8}) {
    for (size_t batch : {size_t{1}, size_t{37}, size_t{256}}) {
      topt.num_threads = threads;
      topt.eval_batch_size = batch;
      core::TrainedModel columnar = core::TrainAutoTest(corpus, evals, topt);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      ExpectSameModel(reference, columnar);
    }
  }
}

TEST(TrainingDeterminismTest, TransientFaultsYieldByteIdenticalModel) {
  // A run whose injected trainer.eval faults are all transient — every
  // family recovers within the retry budget — must produce a model
  // byte-identical to the fault-free run, at any thread count. Retries
  // are pure re-execution; nothing about them may leak into the output.
  auto corpus =
      datagen::GenerateCorpus(datagen::RelationalTablesProfile(150));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = 20;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);

  core::TrainOptions topt;
  topt.synthetic_count = 200;
  topt.eval_retry_attempts = 8;  // ample budget: p=0.4^8 residual risk
  core::TrainedModel clean = core::TrainAutoTest(corpus, evals, topt);
  ASSERT_GT(clean.constraints.size(), 0u);
  ASSERT_EQ(clean.evals_skipped, 0u);

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("trainer.eval:p=0.4,seed=2024").ok());
  core::TrainedModel faulty = core::TrainAutoTest(corpus, evals, topt);
  topt.num_threads = 4;
  core::TrainedModel faulty4 = core::TrainAutoTest(corpus, evals, topt);

  // The faults really fired (p=0.4 over the family fan-out) and every
  // family recovered inside the budget.
  EXPECT_GT(reg.fires(util::kFpTrainerEval), 0u);
  reg.Reset();
  ASSERT_EQ(faulty.evals_skipped, 0u);
  ASSERT_EQ(faulty4.evals_skipped, 0u);
  ExpectSameModel(clean, faulty);
  ExpectSameModel(clean, faulty4);
}

// ---------------------------------------------------------------------------
// Property: warm-started incremental re-selection equals a cold solve.
// A fabricated candidate stream is fed to one IncrementalSelector in
// chunks (each Reselect re-prices from the previous optimal basis), and
// after every chunk the result must equal a fresh cold SelectWithDelta
// over the same prefix — across 200 seeded streams that vary candidate
// shapes, delta, budgets, and the prefilter threshold.
// ---------------------------------------------------------------------------

core::TrainedModel MakeSyntheticModel(uint64_t seed, size_t num_rules,
                                      size_t num_synthetic) {
  util::Rng rng(seed);
  core::TrainedModel model;
  model.num_synthetic = num_synthetic;
  model.synthetic_conf_all.assign(num_synthetic, 0.0);
  for (size_t i = 0; i < num_rules; ++i) {
    core::Sdc sdc;
    sdc.confidence = rng.UniformDouble(0.5, 1.0);
    sdc.fpr = rng.UniformDouble(0.0, 0.02);
    std::vector<uint32_t> det;
    size_t span = static_cast<size_t>(rng.UniformInt(1, 6));
    size_t start = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_synthetic) - 1));
    for (size_t k = 0; k < span; ++k) {
      uint32_t j = static_cast<uint32_t>((start + 3 * k) % num_synthetic);
      det.push_back(j);
    }
    std::sort(det.begin(), det.end());
    det.erase(std::unique(det.begin(), det.end()), det.end());
    for (uint32_t j : det) {
      model.synthetic_conf_all[j] =
          std::max(model.synthetic_conf_all[j], sdc.confidence);
    }
    model.constraints.push_back(sdc);
    model.detections.push_back(std::move(det));
  }
  return model;
}

void ExpectSameSelection(const core::SelectionResult& a,
                         const core::SelectionResult& b, uint64_t seed,
                         size_t prefix) {
  ASSERT_EQ(a.lp_status, b.lp_status) << "seed " << seed << " n " << prefix;
  EXPECT_EQ(a.selected, b.selected) << "seed " << seed << " n " << prefix;
  EXPECT_EQ(a.lp_num_variables, b.lp_num_variables)
      << "seed " << seed << " n " << prefix;
  EXPECT_EQ(a.lp_num_rows, b.lp_num_rows) << "seed " << seed << " n " << prefix;
  EXPECT_NEAR(a.lp_objective, b.lp_objective,
              1e-6 * std::max(1.0, std::fabs(b.lp_objective)))
      << "seed " << seed << " n " << prefix;
}

TEST(IncrementalSelectionPropertyTest, WarmReselectEqualsColdSolve) {
  size_t warm_solves = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(0xca11ab1e + seed);
    size_t num_rules = static_cast<size_t>(rng.UniformInt(20, 120));
    size_t num_synthetic = static_cast<size_t>(rng.UniformInt(10, 60));
    core::TrainedModel model =
        MakeSyntheticModel(seed, num_rules, num_synthetic);

    core::SelectionOptions opt;
    opt.seed = 42 + seed;
    opt.size_budget = static_cast<size_t>(rng.UniformInt(3, 30));
    opt.fpr_budget = rng.UniformDouble(0.02, 0.2);
    // Some streams run FSS-style deltas, some CSS; a few get a prefilter
    // threshold small enough to trigger mid-stream.
    double delta = rng.Bernoulli(0.5) ? 1.0 : rng.UniformDouble(0.0, 0.3);
    if (seed % 10 == 9) opt.max_lp_variables = 15;

    core::IncrementalSelector warm(model, opt, delta);
    size_t prefix = 0;
    while (prefix < num_rules) {
      prefix = std::min(
          num_rules,
          prefix + static_cast<size_t>(rng.UniformInt(5, 40)));
      core::SelectionResult incremental = warm.Reselect(prefix);
      if (incremental.warm_started) ++warm_solves;

      // Cold reference: a fresh selector over the identical prefix.
      core::IncrementalSelector cold(model, opt, delta);
      core::SelectionResult fresh = cold.Reselect(prefix);
      EXPECT_FALSE(fresh.warm_started);
      ExpectSameSelection(incremental, fresh, seed, prefix);
      if (HasFatalFailure()) return;
    }
  }
  // The warm path genuinely engages (not everything falls back to cold).
  EXPECT_GT(warm_solves, 100u);
}

TEST(IncrementalSelectionPropertyTest, SetDeltaMatchesFreshSelector) {
  // CSS -> FSS transitions: narrowing delta on a live selector must give
  // the same result as a fresh selector built at the narrow delta.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    core::TrainedModel model = MakeSyntheticModel(500 + seed, 80, 40);
    core::SelectionOptions opt;
    opt.seed = 7 + seed;
    opt.size_budget = 20;
    opt.fpr_budget = 0.15;

    core::IncrementalSelector selector(model, opt, /*delta=*/1.0);
    core::SelectionResult coarse = selector.SelectAll();
    selector.SetDelta(0.05);
    core::SelectionResult fine = selector.Reselect(model.constraints.size());
    core::SelectionResult fine_fresh = core::SelectWithDelta(model, opt, 0.05);
    ExpectSameSelection(fine, fine_fresh, seed, model.constraints.size());
    EXPECT_EQ(coarse.lp_status, lp::SolveStatus::kOptimal);
    // And CoarseThenFineSelect is exactly this flow.
    core::SelectionOptions fopt = opt;
    fopt.delta = 0.05;
    core::SelectionResult coarse2;
    core::SelectionResult fine2 = core::CoarseThenFineSelect(model, fopt, &coarse2);
    EXPECT_EQ(fine2.selected, fine.selected);
    EXPECT_EQ(coarse2.selected, coarse.selected);
  }
}

TEST(IncrementalSelectionPropertyTest, GreedyMatchesBudgetsAndIsDeterministic) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    core::TrainedModel model = MakeSyntheticModel(900 + seed, 100, 50);
    core::SelectionOptions opt;
    opt.solver = core::SelectionSolver::kGreedy;
    opt.size_budget = 15;
    opt.fpr_budget = 0.1;
    core::SelectionResult a = core::FineSelect(model, opt);
    core::SelectionResult b = core::FineSelect(model, opt);
    EXPECT_TRUE(a.used_greedy);
    EXPECT_EQ(a.selected, b.selected) << "seed " << seed;
    EXPECT_LE(a.selected.size(), opt.size_budget);
    double fpr = 0.0;
    for (size_t i : a.selected) fpr += model.constraints[i].fpr;
    EXPECT_LE(fpr, opt.fpr_budget + 1e-9);
    EXPECT_GE(a.greedy_opt_bound, a.lp_objective);
    // The LP relaxation upper-bounds integral coverage, and greedy must
    // reach at least (1 - 1/e) of it on the size-constrained instances.
    core::SelectionOptions lp_opt = opt;
    lp_opt.solver = core::SelectionSolver::kRevisedSimplex;
    core::SelectionResult relaxed = core::FineSelect(model, lp_opt);
    if (relaxed.lp_status == lp::SolveStatus::kOptimal) {
      EXPECT_GE(a.lp_objective,
                (1.0 - 1.0 / std::exp(1.0)) * relaxed.lp_objective - 1e-6)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace autotest
