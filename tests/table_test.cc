#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "table/column.h"
#include "table/column_store.h"
#include "table/csv.h"
#include "table/table.h"

namespace autotest::table {
namespace {

TEST(ColumnTest, DistinctOrderAndCounts) {
  Column c;
  c.values = {"a", "b", "a", "c", "b", "a"};
  DistinctValues d = Distinct(c);
  ASSERT_EQ(d.values.size(), 3u);
  EXPECT_EQ(d.values[0], "a");
  EXPECT_EQ(d.values[1], "b");
  EXPECT_EQ(d.values[2], "c");
  EXPECT_EQ(d.counts[0], 3u);
  EXPECT_EQ(d.counts[1], 2u);
  EXPECT_EQ(d.counts[2], 1u);
  EXPECT_EQ(d.total, 6u);
}

TEST(ColumnTest, DistinctEmpty) {
  Column c;
  DistinctValues d = Distinct(c);
  EXPECT_TRUE(d.values.empty());
  EXPECT_EQ(d.total, 0u);
}

TEST(ColumnTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("123"));
  EXPECT_TRUE(LooksNumeric("-1.5"));
  EXPECT_TRUE(LooksNumeric("+0.25"));
  EXPECT_TRUE(LooksNumeric(" 42 "));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric("12a"));
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("$12"));
}

TEST(ColumnTest, IsMostlyNumeric) {
  Column c;
  c.values = {"1", "2", "3", "4", "x"};
  EXPECT_TRUE(IsMostlyNumeric(c, 0.8));
  EXPECT_FALSE(IsMostlyNumeric(c, 0.9));
  Column empty;
  EXPECT_FALSE(IsMostlyNumeric(empty));
}

TEST(ColumnTest, Stats) {
  Column c;
  c.values = {"ab", "ab", "12"};
  ColumnStats s = ComputeStats(c);
  EXPECT_EQ(s.num_values, 3u);
  EXPECT_EQ(s.num_distinct, 2u);
  EXPECT_DOUBLE_EQ(s.mean_length, 2.0);
  EXPECT_NEAR(s.numeric_fraction, 1.0 / 3.0, 1e-9);
}

TEST(TableTest, ToCorpusFlattens) {
  Table t1;
  t1.columns.resize(2);
  Table t2;
  t2.columns.resize(3);
  Corpus c = ToCorpus({t1, t2});
  EXPECT_EQ(c.size(), 5u);
}

TEST(CsvTest, RoundTripSimple) {
  Table t;
  Column a;
  a.name = "x";
  a.values = {"1", "2"};
  Column b;
  b.name = "y";
  b.values = {"foo", "bar"};
  t.columns = {a, b};
  std::string text = WriteCsv(t);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->columns.size(), 2u);
  EXPECT_EQ(parsed->columns[0].name, "x");
  EXPECT_EQ(parsed->columns[1].values[1], "bar");
}

TEST(CsvTest, QuotedFields) {
  auto t = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[0].values[0], "x,y");
  EXPECT_EQ(t->columns[1].values[0], "he said \"hi\"");
}

TEST(CsvTest, EmbeddedNewline) {
  auto t = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->columns[0].values.size(), 1u);
  EXPECT_EQ(t->columns[0].values[0], "line1\nline2");
}

TEST(CsvTest, CrlfHandling) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->columns[0].values.size(), 2u);
  EXPECT_EQ(t->columns[1].values[1], "4");
}

TEST(CsvTest, ShortRowsPadded) {
  auto t = ParseCsv("a,b,c\n1,2\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[2].values[0], "");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").has_value());
}

TEST(CsvTest, UnterminatedQuoteDiagnostic) {
  auto r = TryParseCsv("a,b\n1,\"oops\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  // The quote opens on line 2, field 2, byte 6.
  EXPECT_NE(r.status().message().find("line 2, field 2, byte offset 6"),
            std::string::npos)
      << r.status().ToString();
}

TEST(CsvTest, OversizedFieldRejected) {
  CsvOptions opt;
  opt.max_field_bytes = 8;
  auto r = TryParseCsv("a,b\nshort,waytoolongforthelimit\n", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_field_bytes=8"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("line 2, field 2"),
            std::string::npos)
      << r.status().ToString();
}

TEST(CsvTest, OversizedQuotedFieldRejected) {
  CsvOptions opt;
  opt.max_field_bytes = 4;
  auto r = TryParseCsv("a\n\"123456789\"\n", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(CsvTest, OversizedRowRejected) {
  CsvOptions opt;
  opt.max_row_bytes = 10;
  auto r = TryParseCsv("a,b,c\n1234,5678,9012\n", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_row_bytes=10"),
            std::string::npos);
}

TEST(CsvTest, TooManyColumnsRejected) {
  CsvOptions opt;
  opt.max_columns = 3;
  auto r = TryParseCsv("a,b,c,d,e\n", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_columns=3"), std::string::npos);
}

TEST(CsvTest, LimitsOffByDefaultForNormalInput) {
  // Defaults are generous: a perfectly ordinary table sails through.
  auto r = TryParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvTest, ZeroDisablesLimit) {
  CsvOptions opt;
  opt.max_field_bytes = 0;
  opt.max_row_bytes = 0;
  opt.max_columns = 0;
  std::string big(1 << 10, 'x');
  auto r = TryParseCsv("a\n" + big + "\n", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0].values[0].size(), size_t{1} << 10);
}

TEST(CsvTest, TruncatedInputStillParses) {
  // Truncation mid-row (no trailing newline) is tolerated — the partial
  // row is kept, matching the historical contract.
  auto r = TryParseCsv("a,b\n1,2\n3,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->columns[1].values[1], "");
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  auto r = TryReadCsvFile("/nonexistent/no/such.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST(CsvTest, ReadFileParseErrorCarriesPathContext) {
  const std::string path = "/tmp/autotest_csv_badquote.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a\n\"unterminated\n";
  }
  auto r = TryReadCsvFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().ToString().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, ShimsMatchTryVariants) {
  EXPECT_TRUE(ParseCsv("a\n1\n").has_value());
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").has_value());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/no/such.csv").has_value());
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions opt;
  opt.has_header = false;
  auto t = ParseCsv("1,2\n3,4\n", opt);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[0].name, "col0");
  EXPECT_EQ(t->columns[0].values.size(), 2u);
}

TEST(CsvTest, RoundTripWithSpecials) {
  Table t;
  Column a;
  a.name = "weird,name";
  a.values = {"v\"q", "a,b", "line\nbreak", "plain"};
  t.columns = {a};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->columns[0].name, "weird,name");
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(parsed->columns[0].values[i], a.values[i]);
  }
}

// ---------------------------------------------------------------------------
// ColumnStore (DESIGN.md §4k): interning, per-column parity with Distinct,
// Find, arena stability, and pool identity.
// ---------------------------------------------------------------------------

Corpus MakeCorpus(std::vector<std::vector<std::string>> columns) {
  Corpus corpus;
  for (auto& values : columns) {
    Column c;
    c.values = std::move(values);
    corpus.push_back(std::move(c));
  }
  return corpus;
}

TEST(ColumnStoreTest, InternsSharedValuesOnce) {
  Corpus corpus = MakeCorpus({{"us", "fr", "us", "de"},
                              {"fr", "fr", "jp"},
                              {"de", "us"}});
  ColumnStore store = ColumnStore::FromCorpus(corpus);
  // Distinct values across all columns: us, fr, de, jp — each interned
  // exactly once, in first-seen order across columns.
  ASSERT_EQ(store.pool_size(), 4u);
  EXPECT_EQ(store.pool()[0], "us");
  EXPECT_EQ(store.pool()[1], "fr");
  EXPECT_EQ(store.pool()[2], "de");
  EXPECT_EQ(store.pool()[3], "jp");
  EXPECT_EQ(store.num_columns(), 3u);
}

TEST(ColumnStoreTest, ColumnsMatchDistinct) {
  Corpus corpus = MakeCorpus({{"a", "b", "a", "c", "b", "a"},
                              {},
                              {"b", "b", "b"}});
  ColumnStore store = ColumnStore::FromCorpus(corpus);
  ASSERT_EQ(store.num_columns(), corpus.size());
  for (size_t c = 0; c < corpus.size(); ++c) {
    DistinctValues d = Distinct(corpus[c]);
    ColumnStore::ColumnRef ref = store.column(c);
    ASSERT_EQ(ref.size(), d.size()) << c;
    EXPECT_EQ(ref.total_weight, d.total) << c;
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(store.pool()[ref.ids[i]], d.values[i]) << c;
      EXPECT_EQ(ref.counts[i], d.counts[i]) << c;
    }
  }
}

TEST(ColumnStoreTest, FindRoundTripsAndRejectsUnknown) {
  Corpus corpus = MakeCorpus({{"alpha", "beta", "", "gamma"}});
  ColumnStore store = ColumnStore::FromCorpus(corpus);
  for (size_t id = 0; id < store.pool_size(); ++id) {
    EXPECT_EQ(store.Find(store.pool()[id]), id);
  }
  EXPECT_EQ(store.Find("delta"), ColumnStore::kNotFound);
  // The empty string is a real corpus value and must intern like any other.
  EXPECT_NE(store.Find(""), ColumnStore::kNotFound);
}

TEST(ColumnStoreTest, ArenaViewsSurviveMoveAndOversizedValues) {
  // An oversized value gets a dedicated chunk; small values keep packing
  // into the current chunk afterwards. All views must stay valid across a
  // move of the store.
  std::string huge(1 << 19, 'x');  // 2x the arena chunk size
  Corpus corpus = MakeCorpus({{"small1", huge, "small2"}});
  ColumnStore built = ColumnStore::FromCorpus(corpus);
  ColumnStore store = std::move(built);
  ASSERT_EQ(store.pool_size(), 3u);
  EXPECT_EQ(store.pool()[0], "small1");
  EXPECT_EQ(store.pool()[1], huge);
  EXPECT_EQ(store.pool()[2], "small2");
  EXPECT_GE(store.arena_bytes(), huge.size() + 12);
  EXPECT_EQ(store.Find(huge), 1u);
}

TEST(ColumnStoreTest, PoolIdsAreUniqueAndNonZero) {
  Corpus corpus = MakeCorpus({{"a", "b"}});
  ColumnStore s1 = ColumnStore::FromCorpus(corpus);
  ColumnStore s2 = ColumnStore::FromCorpus(corpus);
  // 0 means "no pool identity" in BatchDistance, so ids must never be 0,
  // and two stores (even over identical corpora) must never share one.
  EXPECT_NE(s1.pool_id(), 0u);
  EXPECT_NE(s2.pool_id(), 0u);
  EXPECT_NE(s1.pool_id(), s2.pool_id());
}

}  // namespace
}  // namespace autotest::table
