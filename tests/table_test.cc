#include <gtest/gtest.h>

#include "table/column.h"
#include "table/csv.h"
#include "table/table.h"

namespace autotest::table {
namespace {

TEST(ColumnTest, DistinctOrderAndCounts) {
  Column c;
  c.values = {"a", "b", "a", "c", "b", "a"};
  DistinctValues d = Distinct(c);
  ASSERT_EQ(d.values.size(), 3u);
  EXPECT_EQ(d.values[0], "a");
  EXPECT_EQ(d.values[1], "b");
  EXPECT_EQ(d.values[2], "c");
  EXPECT_EQ(d.counts[0], 3u);
  EXPECT_EQ(d.counts[1], 2u);
  EXPECT_EQ(d.counts[2], 1u);
  EXPECT_EQ(d.total, 6u);
}

TEST(ColumnTest, DistinctEmpty) {
  Column c;
  DistinctValues d = Distinct(c);
  EXPECT_TRUE(d.values.empty());
  EXPECT_EQ(d.total, 0u);
}

TEST(ColumnTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("123"));
  EXPECT_TRUE(LooksNumeric("-1.5"));
  EXPECT_TRUE(LooksNumeric("+0.25"));
  EXPECT_TRUE(LooksNumeric(" 42 "));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric("12a"));
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("$12"));
}

TEST(ColumnTest, IsMostlyNumeric) {
  Column c;
  c.values = {"1", "2", "3", "4", "x"};
  EXPECT_TRUE(IsMostlyNumeric(c, 0.8));
  EXPECT_FALSE(IsMostlyNumeric(c, 0.9));
  Column empty;
  EXPECT_FALSE(IsMostlyNumeric(empty));
}

TEST(ColumnTest, Stats) {
  Column c;
  c.values = {"ab", "ab", "12"};
  ColumnStats s = ComputeStats(c);
  EXPECT_EQ(s.num_values, 3u);
  EXPECT_EQ(s.num_distinct, 2u);
  EXPECT_DOUBLE_EQ(s.mean_length, 2.0);
  EXPECT_NEAR(s.numeric_fraction, 1.0 / 3.0, 1e-9);
}

TEST(TableTest, ToCorpusFlattens) {
  Table t1;
  t1.columns.resize(2);
  Table t2;
  t2.columns.resize(3);
  Corpus c = ToCorpus({t1, t2});
  EXPECT_EQ(c.size(), 5u);
}

TEST(CsvTest, RoundTripSimple) {
  Table t;
  Column a;
  a.name = "x";
  a.values = {"1", "2"};
  Column b;
  b.name = "y";
  b.values = {"foo", "bar"};
  t.columns = {a, b};
  std::string text = WriteCsv(t);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->columns.size(), 2u);
  EXPECT_EQ(parsed->columns[0].name, "x");
  EXPECT_EQ(parsed->columns[1].values[1], "bar");
}

TEST(CsvTest, QuotedFields) {
  auto t = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[0].values[0], "x,y");
  EXPECT_EQ(t->columns[1].values[0], "he said \"hi\"");
}

TEST(CsvTest, EmbeddedNewline) {
  auto t = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->columns[0].values.size(), 1u);
  EXPECT_EQ(t->columns[0].values[0], "line1\nline2");
}

TEST(CsvTest, CrlfHandling) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->columns[0].values.size(), 2u);
  EXPECT_EQ(t->columns[1].values[1], "4");
}

TEST(CsvTest, ShortRowsPadded) {
  auto t = ParseCsv("a,b,c\n1,2\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[2].values[0], "");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").has_value());
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions opt;
  opt.has_header = false;
  auto t = ParseCsv("1,2\n3,4\n", opt);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->columns[0].name, "col0");
  EXPECT_EQ(t->columns[0].values.size(), 2u);
}

TEST(CsvTest, RoundTripWithSpecials) {
  Table t;
  Column a;
  a.name = "weird,name";
  a.values = {"v\"q", "a,b", "line\nbreak", "plain"};
  t.columns = {a};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->columns[0].name, "weird,name");
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(parsed->columns[0].values[i], a.values[i]);
  }
}

}  // namespace
}  // namespace autotest::table
