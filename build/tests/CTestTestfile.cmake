# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/outlier_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
add_test(typedet_test "/root/repo/build/tests/typedet_test")
set_tests_properties(typedet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;25;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;27;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;30;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;31;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialization_test "/root/repo/build/tests/serialization_test")
set_tests_properties(serialization_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;32;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;33;at_test_single;/root/repo/tests/CMakeLists.txt;0;")
