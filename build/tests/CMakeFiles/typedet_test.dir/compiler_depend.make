# Empty compiler generated dependencies file for typedet_test.
# This may be replaced when dependencies are built.
