file(REMOVE_RECURSE
  "CMakeFiles/typedet_test.dir/typedet_test.cc.o"
  "CMakeFiles/typedet_test.dir/typedet_test.cc.o.d"
  "typedet_test"
  "typedet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typedet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
