file(REMOVE_RECURSE
  "CMakeFiles/autotest_cli.dir/autotest_cli.cpp.o"
  "CMakeFiles/autotest_cli.dir/autotest_cli.cpp.o.d"
  "autotest"
  "autotest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
