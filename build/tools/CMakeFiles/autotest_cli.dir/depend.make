# Empty dependencies file for autotest_cli.
# This may be replaced when dependencies are built.
