file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_delta.dir/bench_fig19_delta.cc.o"
  "CMakeFiles/bench_fig19_delta.dir/bench_fig19_delta.cc.o.d"
  "bench_fig19_delta"
  "bench_fig19_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
