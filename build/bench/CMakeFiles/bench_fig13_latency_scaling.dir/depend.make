# Empty dependencies file for bench_fig13_latency_scaling.
# This may be replaced when dependencies are built.
