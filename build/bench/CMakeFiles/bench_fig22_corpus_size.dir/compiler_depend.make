# Empty compiler generated dependencies file for bench_fig22_corpus_size.
# This may be replaced when dependencies are built.
