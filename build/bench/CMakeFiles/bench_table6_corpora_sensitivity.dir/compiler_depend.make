# Empty compiler generated dependencies file for bench_table6_corpora_sensitivity.
# This may be replaced when dependencies are built.
