file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_cleaning.dir/bench_table9_cleaning.cc.o"
  "CMakeFiles/bench_table9_cleaning.dir/bench_table9_cleaning.cc.o.d"
  "bench_table9_cleaning"
  "bench_table9_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
