# Empty dependencies file for bench_robustness_hash.
# This may be replaced when dependencies are built.
