
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_robustness_hash.cc" "bench/CMakeFiles/bench_robustness_hash.dir/bench_robustness_hash.cc.o" "gcc" "bench/CMakeFiles/bench_robustness_hash.dir/bench_robustness_hash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/at_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/at_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/at_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/at_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/at_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/typedet/CMakeFiles/at_typedet.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/at_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/at_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/at_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/outlier/CMakeFiles/at_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/at_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/at_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/at_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/at_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
