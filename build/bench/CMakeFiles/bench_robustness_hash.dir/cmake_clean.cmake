file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_hash.dir/bench_robustness_hash.cc.o"
  "CMakeFiles/bench_robustness_hash.dir/bench_robustness_hash.cc.o.d"
  "bench_robustness_hash"
  "bench_robustness_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
