# Empty dependencies file for bench_table5_size_budget.
# This may be replaced when dependencies are built.
