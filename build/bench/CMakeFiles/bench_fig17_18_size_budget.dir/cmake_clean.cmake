file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_size_budget.dir/bench_fig17_18_size_budget.cc.o"
  "CMakeFiles/bench_fig17_18_size_budget.dir/bench_fig17_18_size_budget.cc.o.d"
  "bench_fig17_18_size_budget"
  "bench_fig17_18_size_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_size_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
