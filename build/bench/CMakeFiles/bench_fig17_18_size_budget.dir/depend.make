# Empty dependencies file for bench_fig17_18_size_budget.
# This may be replaced when dependencies are built.
