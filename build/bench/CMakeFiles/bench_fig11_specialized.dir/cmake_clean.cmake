file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_specialized.dir/bench_fig11_specialized.cc.o"
  "CMakeFiles/bench_fig11_specialized.dir/bench_fig11_specialized.cc.o.d"
  "bench_fig11_specialized"
  "bench_fig11_specialized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_specialized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
