# Empty dependencies file for bench_fig11_specialized.
# This may be replaced when dependencies are built.
