file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_cohens_h.dir/bench_fig21_cohens_h.cc.o"
  "CMakeFiles/bench_fig21_cohens_h.dir/bench_fig21_cohens_h.cc.o.d"
  "bench_fig21_cohens_h"
  "bench_fig21_cohens_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_cohens_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
