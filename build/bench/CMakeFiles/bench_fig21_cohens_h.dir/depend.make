# Empty dependencies file for bench_fig21_cohens_h.
# This may be replaced when dependencies are built.
