# Empty dependencies file for bench_fig20_wilson.
# This may be replaced when dependencies are built.
