file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_wilson.dir/bench_fig20_wilson.cc.o"
  "CMakeFiles/bench_fig20_wilson.dir/bench_fig20_wilson.cc.o.d"
  "bench_fig20_wilson"
  "bench_fig20_wilson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
