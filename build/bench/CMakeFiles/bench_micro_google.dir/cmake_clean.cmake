file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_google.dir/bench_micro_google.cc.o"
  "CMakeFiles/bench_micro_google.dir/bench_micro_google.cc.o.d"
  "bench_micro_google"
  "bench_micro_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
