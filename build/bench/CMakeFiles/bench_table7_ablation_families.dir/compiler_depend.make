# Empty compiler generated dependencies file for bench_table7_ablation_families.
# This may be replaced when dependencies are built.
