file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ablation_families.dir/bench_table7_ablation_families.cc.o"
  "CMakeFiles/bench_table7_ablation_families.dir/bench_table7_ablation_families.cc.o.d"
  "bench_table7_ablation_families"
  "bench_table7_ablation_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ablation_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
