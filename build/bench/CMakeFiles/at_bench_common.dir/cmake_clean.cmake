file(REMOVE_RECURSE
  "CMakeFiles/at_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/at_bench_common.dir/bench_common.cc.o.d"
  "libat_bench_common.a"
  "libat_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
