file(REMOVE_RECURSE
  "libat_bench_common.a"
)
