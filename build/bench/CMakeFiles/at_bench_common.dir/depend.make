# Empty dependencies file for at_bench_common.
# This may be replaced when dependencies are built.
