file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_corpora.dir/bench_table3_corpora.cc.o"
  "CMakeFiles/bench_table3_corpora.dir/bench_table3_corpora.cc.o.d"
  "bench_table3_corpora"
  "bench_table3_corpora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_corpora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
