# Empty dependencies file for bench_fig15_16_fpr_budget.
# This may be replaced when dependencies are built.
