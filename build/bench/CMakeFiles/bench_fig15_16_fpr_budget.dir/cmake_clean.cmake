file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_fpr_budget.dir/bench_fig15_16_fpr_budget.cc.o"
  "CMakeFiles/bench_fig15_16_fpr_budget.dir/bench_fig15_16_fpr_budget.cc.o.d"
  "bench_fig15_16_fpr_budget"
  "bench_fig15_16_fpr_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_fpr_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
