# Empty dependencies file for bench_fig9_10_tablib.
# This may be replaced when dependencies are built.
