file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_tablib.dir/bench_fig9_10_tablib.cc.o"
  "CMakeFiles/bench_fig9_10_tablib.dir/bench_fig9_10_tablib.cc.o.d"
  "bench_fig9_10_tablib"
  "bench_fig9_10_tablib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_tablib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
