file(REMOVE_RECURSE
  "libat_util.a"
)
