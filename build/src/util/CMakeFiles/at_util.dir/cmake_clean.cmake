file(REMOVE_RECURSE
  "CMakeFiles/at_util.dir/hashing.cc.o"
  "CMakeFiles/at_util.dir/hashing.cc.o.d"
  "CMakeFiles/at_util.dir/rng.cc.o"
  "CMakeFiles/at_util.dir/rng.cc.o.d"
  "CMakeFiles/at_util.dir/string_util.cc.o"
  "CMakeFiles/at_util.dir/string_util.cc.o.d"
  "CMakeFiles/at_util.dir/thread_pool.cc.o"
  "CMakeFiles/at_util.dir/thread_pool.cc.o.d"
  "libat_util.a"
  "libat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
