file(REMOVE_RECURSE
  "CMakeFiles/at_core.dir/auto_test.cc.o"
  "CMakeFiles/at_core.dir/auto_test.cc.o.d"
  "CMakeFiles/at_core.dir/predictor.cc.o"
  "CMakeFiles/at_core.dir/predictor.cc.o.d"
  "CMakeFiles/at_core.dir/report.cc.o"
  "CMakeFiles/at_core.dir/report.cc.o.d"
  "CMakeFiles/at_core.dir/sdc.cc.o"
  "CMakeFiles/at_core.dir/sdc.cc.o.d"
  "CMakeFiles/at_core.dir/selection.cc.o"
  "CMakeFiles/at_core.dir/selection.cc.o.d"
  "CMakeFiles/at_core.dir/serialization.cc.o"
  "CMakeFiles/at_core.dir/serialization.cc.o.d"
  "CMakeFiles/at_core.dir/trainer.cc.o"
  "CMakeFiles/at_core.dir/trainer.cc.o.d"
  "libat_core.a"
  "libat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
