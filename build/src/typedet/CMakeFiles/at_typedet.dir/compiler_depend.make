# Empty compiler generated dependencies file for at_typedet.
# This may be replaced when dependencies are built.
