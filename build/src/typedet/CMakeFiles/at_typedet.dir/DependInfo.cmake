
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typedet/cta_zoo.cc" "src/typedet/CMakeFiles/at_typedet.dir/cta_zoo.cc.o" "gcc" "src/typedet/CMakeFiles/at_typedet.dir/cta_zoo.cc.o.d"
  "/root/repo/src/typedet/eval_functions.cc" "src/typedet/CMakeFiles/at_typedet.dir/eval_functions.cc.o" "gcc" "src/typedet/CMakeFiles/at_typedet.dir/eval_functions.cc.o.d"
  "/root/repo/src/typedet/validators.cc" "src/typedet/CMakeFiles/at_typedet.dir/validators.cc.o" "gcc" "src/typedet/CMakeFiles/at_typedet.dir/validators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/at_util.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/at_table.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/at_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/at_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/at_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/at_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
