file(REMOVE_RECURSE
  "CMakeFiles/at_typedet.dir/cta_zoo.cc.o"
  "CMakeFiles/at_typedet.dir/cta_zoo.cc.o.d"
  "CMakeFiles/at_typedet.dir/eval_functions.cc.o"
  "CMakeFiles/at_typedet.dir/eval_functions.cc.o.d"
  "CMakeFiles/at_typedet.dir/validators.cc.o"
  "CMakeFiles/at_typedet.dir/validators.cc.o.d"
  "libat_typedet.a"
  "libat_typedet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_typedet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
