file(REMOVE_RECURSE
  "libat_typedet.a"
)
