# Empty compiler generated dependencies file for at_datagen.
# This may be replaced when dependencies are built.
