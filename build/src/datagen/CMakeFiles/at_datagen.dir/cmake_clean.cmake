file(REMOVE_RECURSE
  "CMakeFiles/at_datagen.dir/bench_gen.cc.o"
  "CMakeFiles/at_datagen.dir/bench_gen.cc.o.d"
  "CMakeFiles/at_datagen.dir/cleaning_bench.cc.o"
  "CMakeFiles/at_datagen.dir/cleaning_bench.cc.o.d"
  "CMakeFiles/at_datagen.dir/column_gen.cc.o"
  "CMakeFiles/at_datagen.dir/column_gen.cc.o.d"
  "CMakeFiles/at_datagen.dir/corpus_gen.cc.o"
  "CMakeFiles/at_datagen.dir/corpus_gen.cc.o.d"
  "CMakeFiles/at_datagen.dir/error_injector.cc.o"
  "CMakeFiles/at_datagen.dir/error_injector.cc.o.d"
  "CMakeFiles/at_datagen.dir/gazetteer.cc.o"
  "CMakeFiles/at_datagen.dir/gazetteer.cc.o.d"
  "CMakeFiles/at_datagen.dir/gazetteer_machine.cc.o"
  "CMakeFiles/at_datagen.dir/gazetteer_machine.cc.o.d"
  "CMakeFiles/at_datagen.dir/gazetteer_machine2.cc.o"
  "CMakeFiles/at_datagen.dir/gazetteer_machine2.cc.o.d"
  "CMakeFiles/at_datagen.dir/gazetteer_nl.cc.o"
  "CMakeFiles/at_datagen.dir/gazetteer_nl.cc.o.d"
  "CMakeFiles/at_datagen.dir/gazetteer_nl2.cc.o"
  "CMakeFiles/at_datagen.dir/gazetteer_nl2.cc.o.d"
  "libat_datagen.a"
  "libat_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
