file(REMOVE_RECURSE
  "libat_datagen.a"
)
