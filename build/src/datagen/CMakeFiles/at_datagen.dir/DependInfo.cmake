
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/bench_gen.cc" "src/datagen/CMakeFiles/at_datagen.dir/bench_gen.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/bench_gen.cc.o.d"
  "/root/repo/src/datagen/cleaning_bench.cc" "src/datagen/CMakeFiles/at_datagen.dir/cleaning_bench.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/cleaning_bench.cc.o.d"
  "/root/repo/src/datagen/column_gen.cc" "src/datagen/CMakeFiles/at_datagen.dir/column_gen.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/column_gen.cc.o.d"
  "/root/repo/src/datagen/corpus_gen.cc" "src/datagen/CMakeFiles/at_datagen.dir/corpus_gen.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/corpus_gen.cc.o.d"
  "/root/repo/src/datagen/error_injector.cc" "src/datagen/CMakeFiles/at_datagen.dir/error_injector.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/error_injector.cc.o.d"
  "/root/repo/src/datagen/gazetteer.cc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer.cc.o.d"
  "/root/repo/src/datagen/gazetteer_machine.cc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_machine.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_machine.cc.o.d"
  "/root/repo/src/datagen/gazetteer_machine2.cc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_machine2.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_machine2.cc.o.d"
  "/root/repo/src/datagen/gazetteer_nl.cc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_nl.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_nl.cc.o.d"
  "/root/repo/src/datagen/gazetteer_nl2.cc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_nl2.cc.o" "gcc" "src/datagen/CMakeFiles/at_datagen.dir/gazetteer_nl2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/at_util.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/at_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
