# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("table")
subdirs("stats")
subdirs("pattern")
subdirs("ml")
subdirs("datagen")
subdirs("embed")
subdirs("typedet")
subdirs("lp")
subdirs("core")
subdirs("outlier")
subdirs("eval")
subdirs("baselines")
