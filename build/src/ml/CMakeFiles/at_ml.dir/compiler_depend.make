# Empty compiler generated dependencies file for at_ml.
# This may be replaced when dependencies are built.
