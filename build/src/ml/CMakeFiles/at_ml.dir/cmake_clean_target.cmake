file(REMOVE_RECURSE
  "libat_ml.a"
)
