file(REMOVE_RECURSE
  "CMakeFiles/at_ml.dir/features.cc.o"
  "CMakeFiles/at_ml.dir/features.cc.o.d"
  "CMakeFiles/at_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/at_ml.dir/logistic_regression.cc.o.d"
  "libat_ml.a"
  "libat_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
