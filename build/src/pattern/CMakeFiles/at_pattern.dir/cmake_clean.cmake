file(REMOVE_RECURSE
  "CMakeFiles/at_pattern.dir/miner.cc.o"
  "CMakeFiles/at_pattern.dir/miner.cc.o.d"
  "CMakeFiles/at_pattern.dir/pattern.cc.o"
  "CMakeFiles/at_pattern.dir/pattern.cc.o.d"
  "libat_pattern.a"
  "libat_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
