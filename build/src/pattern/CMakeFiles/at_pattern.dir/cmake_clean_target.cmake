file(REMOVE_RECURSE
  "libat_pattern.a"
)
