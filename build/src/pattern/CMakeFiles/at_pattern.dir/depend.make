# Empty dependencies file for at_pattern.
# This may be replaced when dependencies are built.
