
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/miner.cc" "src/pattern/CMakeFiles/at_pattern.dir/miner.cc.o" "gcc" "src/pattern/CMakeFiles/at_pattern.dir/miner.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/pattern/CMakeFiles/at_pattern.dir/pattern.cc.o" "gcc" "src/pattern/CMakeFiles/at_pattern.dir/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/at_util.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/at_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
