file(REMOVE_RECURSE
  "CMakeFiles/at_table.dir/column.cc.o"
  "CMakeFiles/at_table.dir/column.cc.o.d"
  "CMakeFiles/at_table.dir/csv.cc.o"
  "CMakeFiles/at_table.dir/csv.cc.o.d"
  "CMakeFiles/at_table.dir/table.cc.o"
  "CMakeFiles/at_table.dir/table.cc.o.d"
  "libat_table.a"
  "libat_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
