file(REMOVE_RECURSE
  "libat_table.a"
)
