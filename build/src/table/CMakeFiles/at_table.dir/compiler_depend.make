# Empty compiler generated dependencies file for at_table.
# This may be replaced when dependencies are built.
