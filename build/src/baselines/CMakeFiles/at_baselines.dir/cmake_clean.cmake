file(REMOVE_RECURSE
  "CMakeFiles/at_baselines.dir/baselines.cc.o"
  "CMakeFiles/at_baselines.dir/baselines.cc.o.d"
  "libat_baselines.a"
  "libat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
