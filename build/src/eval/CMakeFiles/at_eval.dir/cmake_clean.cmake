file(REMOVE_RECURSE
  "CMakeFiles/at_eval.dir/harness.cc.o"
  "CMakeFiles/at_eval.dir/harness.cc.o.d"
  "CMakeFiles/at_eval.dir/metrics.cc.o"
  "CMakeFiles/at_eval.dir/metrics.cc.o.d"
  "libat_eval.a"
  "libat_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
