file(REMOVE_RECURSE
  "libat_eval.a"
)
