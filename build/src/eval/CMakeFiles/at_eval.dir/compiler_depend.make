# Empty compiler generated dependencies file for at_eval.
# This may be replaced when dependencies are built.
