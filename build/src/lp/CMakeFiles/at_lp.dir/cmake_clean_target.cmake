file(REMOVE_RECURSE
  "libat_lp.a"
)
