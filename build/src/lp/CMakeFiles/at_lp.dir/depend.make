# Empty dependencies file for at_lp.
# This may be replaced when dependencies are built.
