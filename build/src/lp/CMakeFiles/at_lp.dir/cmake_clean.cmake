file(REMOVE_RECURSE
  "CMakeFiles/at_lp.dir/simplex.cc.o"
  "CMakeFiles/at_lp.dir/simplex.cc.o.d"
  "libat_lp.a"
  "libat_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
