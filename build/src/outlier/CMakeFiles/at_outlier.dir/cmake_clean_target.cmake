file(REMOVE_RECURSE
  "libat_outlier.a"
)
