# Empty compiler generated dependencies file for at_outlier.
# This may be replaced when dependencies are built.
