file(REMOVE_RECURSE
  "CMakeFiles/at_outlier.dir/outlier.cc.o"
  "CMakeFiles/at_outlier.dir/outlier.cc.o.d"
  "libat_outlier.a"
  "libat_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
