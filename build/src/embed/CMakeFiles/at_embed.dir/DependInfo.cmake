
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/embedding.cc" "src/embed/CMakeFiles/at_embed.dir/embedding.cc.o" "gcc" "src/embed/CMakeFiles/at_embed.dir/embedding.cc.o.d"
  "/root/repo/src/embed/vector_math.cc" "src/embed/CMakeFiles/at_embed.dir/vector_math.cc.o" "gcc" "src/embed/CMakeFiles/at_embed.dir/vector_math.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/at_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/at_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/at_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
