# Empty dependencies file for at_embed.
# This may be replaced when dependencies are built.
