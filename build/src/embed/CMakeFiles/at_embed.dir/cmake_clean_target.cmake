file(REMOVE_RECURSE
  "libat_embed.a"
)
