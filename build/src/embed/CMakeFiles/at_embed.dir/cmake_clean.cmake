file(REMOVE_RECURSE
  "CMakeFiles/at_embed.dir/embedding.cc.o"
  "CMakeFiles/at_embed.dir/embedding.cc.o.d"
  "CMakeFiles/at_embed.dir/vector_math.cc.o"
  "CMakeFiles/at_embed.dir/vector_math.cc.o.d"
  "libat_embed.a"
  "libat_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
