file(REMOVE_RECURSE
  "CMakeFiles/at_stats.dir/statistics.cc.o"
  "CMakeFiles/at_stats.dir/statistics.cc.o.d"
  "libat_stats.a"
  "libat_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
