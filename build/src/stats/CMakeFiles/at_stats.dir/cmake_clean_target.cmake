file(REMOVE_RECURSE
  "libat_stats.a"
)
