# Empty dependencies file for at_stats.
# This may be replaced when dependencies are built.
