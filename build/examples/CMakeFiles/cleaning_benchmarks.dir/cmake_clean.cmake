file(REMOVE_RECURSE
  "CMakeFiles/cleaning_benchmarks.dir/cleaning_benchmarks.cpp.o"
  "CMakeFiles/cleaning_benchmarks.dir/cleaning_benchmarks.cpp.o.d"
  "cleaning_benchmarks"
  "cleaning_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
