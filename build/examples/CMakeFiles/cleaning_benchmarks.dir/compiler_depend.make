# Empty compiler generated dependencies file for cleaning_benchmarks.
# This may be replaced when dependencies are built.
