# Empty compiler generated dependencies file for custom_domain_extension.
# This may be replaced when dependencies are built.
