file(REMOVE_RECURSE
  "CMakeFiles/custom_domain_extension.dir/custom_domain_extension.cpp.o"
  "CMakeFiles/custom_domain_extension.dir/custom_domain_extension.cpp.o.d"
  "custom_domain_extension"
  "custom_domain_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_domain_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
