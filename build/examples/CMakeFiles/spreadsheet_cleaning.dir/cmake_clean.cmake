file(REMOVE_RECURSE
  "CMakeFiles/spreadsheet_cleaning.dir/spreadsheet_cleaning.cpp.o"
  "CMakeFiles/spreadsheet_cleaning.dir/spreadsheet_cleaning.cpp.o.d"
  "spreadsheet_cleaning"
  "spreadsheet_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreadsheet_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
