# Empty dependencies file for spreadsheet_cleaning.
# This may be replaced when dependencies are built.
