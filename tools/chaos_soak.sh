#!/usr/bin/env bash
# Chaos soak for the autotest CLI (DESIGN.md §4e).
#
# Drives the tier-1 CLI under injected faults and asserts the retry &
# degradation contract end to end:
#
#   1. transient-only injection (all failpoints, p=0.05, code=io) across
#      N seeds: every train must complete and produce a rules file
#      byte-identical to the fault-free baseline — retries are invisible
#      in output;
#   2. permanent injection losing a within-quorum subset of shards: train
#      must succeed degraded and stamp lost-shard provenance into the
#      recipe, and check must accept the degraded rules;
#   3. permanent injection above the quorum: train must fail fast with the
#      structured invalid-input exit code, without burning retries.
#
# A second mode soaks the serving tier (DESIGN.md §4h): a long-lived
# `autotest serve` daemon under injected accept/read/parse faults takes
# seeded client traffic; every outcome must be a documented exit class
# (never a crash), overload must produce structured sheds whose count
# matches the server's serve.requests_shed counter exactly, and the final
# --metrics-dump must parse as an autotest.metrics.v1 document.
#
# Usage: chaos_soak.sh <autotest-binary> [mode] [seeds]
#   mode is batch | serve | all (default all).
#   seeds defaults to $CHAOS_SEEDS or 20 (batch); serve request volume
#   comes from $SERVE_SOAK_REQUESTS (default 40).
#
# Registered as the `chaos_soak` (batch) and `serve_soak` (serve) ctest
# entries (wall-clock capped there); run_sanitized_tests.sh repeats them
# under ASan.

set -u

AUTOTEST="${1:?usage: chaos_soak.sh <autotest-binary> [mode] [seeds]}"
MODE="${2:-all}"
SEEDS="${3:-${CHAOS_SEEDS:-20}}"

case "$MODE" in
  batch|serve|all) ;;
  *)
    echo "chaos_soak: unknown mode '$MODE' (want batch, serve or all)" >&2
    exit 1
    ;;
esac

if [ ! -x "$AUTOTEST" ]; then
  echo "chaos_soak: $AUTOTEST is not an executable" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/autotest_chaos.XXXXXX")"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

# Small but non-trivial training configuration: sharded, with enough
# columns that the shard loader, trainer fan-out and serializer all do
# real work, yet fast enough to soak many seeds inside the ctest cap.
TRAIN_ARGS=(--columns 100 --centroids 12 --synthetic 60 --shards 6
            --max-retries 6)

fail() {
  echo "chaos_soak: FAIL: $*" >&2
  exit 1
}

run_batch() {

echo "chaos_soak: baseline fault-free train"
"$AUTOTEST" train "${TRAIN_ARGS[@]}" --out "$WORK/baseline.sdc" \
    > "$WORK/baseline.out" 2> "$WORK/baseline.err" \
  || fail "baseline train exited $? ($(cat "$WORK/baseline.err"))"
[ -s "$WORK/baseline.sdc.recipe" ] || fail "baseline recipe missing"
grep -q '^degraded' "$WORK/baseline.sdc.recipe" \
  && fail "baseline recipe claims degradation without faults"

# --- scenario 1: transient faults are retried into invisibility ---------

printf 'city,date\nseattle,6/1/2022\ntokyo,6/2/2022\nparis,junk\n' \
  > "$WORK/table.csv"

total_retries=0
for seed in $(seq 1 "$SEEDS"); do
  spec="all:p=0.05,code=io,seed=$seed"
  AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
      --out "$WORK/s$seed.sdc" \
      > "$WORK/s$seed.out" 2> "$WORK/s$seed.err" \
    || fail "seed $seed: train exited $? under $spec ($(cat "$WORK/s$seed.err"))"
  cmp -s "$WORK/baseline.sdc" "$WORK/s$seed.sdc" \
    || fail "seed $seed: rules differ from fault-free baseline under $spec"
  grep -q '^degraded' "$WORK/s$seed.sdc.recipe" \
    && fail "seed $seed: transient-only faults must not degrade the model"
  # Count masked retries surfaced by the shard-load report.
  r="$(sed -n 's/.*retries=\([0-9]*\).*/\1/p' "$WORK/s$seed.err" | head -1)"
  total_retries=$(( total_retries + ${r:-0} ))
  AT_FAILPOINTS="$spec" "$AUTOTEST" check "$WORK/table.csv" \
      --rules "$WORK/s$seed.sdc" --max-retries 6 \
      > /dev/null 2> "$WORK/c$seed.err" \
    || fail "seed $seed: check exited $? under $spec ($(cat "$WORK/c$seed.err"))"
done
[ "$total_retries" -gt 0 ] \
  || fail "no shard retries observed across $SEEDS seeds (p=0.05 over 6 shards)"
echo "chaos_soak: $SEEDS transient seeds ok, $total_retries shard retries masked"

# --- scenario 2: within-quorum permanent loss degrades with provenance --

spec="shard.read:p=0.4,code=dataloss,seed=7"  # loses shards 2,3 of 6
AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
    --shard-quorum 0.5 --out "$WORK/degraded.sdc" \
    > /dev/null 2> "$WORK/degraded.err" \
  || fail "degraded train exited $? under $spec ($(cat "$WORK/degraded.err"))"
grep -q '^degraded 2/6 2:DATA_LOSS,3:DATA_LOSS$' "$WORK/degraded.sdc.recipe" \
  || fail "degraded provenance missing or wrong: $(cat "$WORK/degraded.sdc.recipe")"
grep -q 'degraded mode' "$WORK/degraded.err" \
  || fail "degraded train did not warn about degraded mode"
"$AUTOTEST" check "$WORK/table.csv" --rules "$WORK/degraded.sdc" \
    > /dev/null 2> "$WORK/degraded_check.err" \
  || fail "check of degraded rules exited $?"
grep -q 'rebuilding that corpus' "$WORK/degraded_check.err" \
  || fail "check did not rebuild the degraded corpus from provenance"
echo "chaos_soak: degraded scenario ok (2/6 shards lost, provenance stamped)"

# --- scenario 3: above-quorum permanent loss fails fast -----------------

spec="shard.read=on,code=dataloss"
AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
    --out "$WORK/deadloss.sdc" > /dev/null 2> "$WORK/deadloss.err"
rc=$?
[ "$rc" -eq 3 ] \
  || fail "all-shards-dataloss train exited $rc, want 3 (invalid input)"
grep -q 'quorum missed' "$WORK/deadloss.err" \
  || fail "fast-fail error does not name the missed quorum"
grep -q 'DATA_LOSS' "$WORK/deadloss.err" \
  || fail "fast-fail error does not carry the permanent code"
grep -q 'after 1 attempt(s)' "$WORK/deadloss.err" \
  || fail "permanent faults must not be retried"
[ -e "$WORK/deadloss.sdc" ] && fail "failed train left a rules file behind"
echo "chaos_soak: fast-fail scenario ok (DATA_LOSS, no retries)"

}

# --- serve soak (DESIGN.md §4h) -----------------------------------------
#
# One daemon, five phases: (1) seeded mixed traffic under injected
# serve.read / rules.parse / budget.charge faults — every query must exit
# in a documented class and the daemon must stay up; (2) an overload
# burst against a deliberately tiny admission budget — sheds must be
# structured exit-7s; (3) a starved tenant must burn its token-bucket
# allowance into structured exit-8 quota rejections without touching any
# other tenant; (4) an abusive tenant sending malformed tables must trip
# its circuit breaker at --breaker-failures and be quarantined behind
# reason=circuit_open sheds; (5) SIGTERM — the daemon must drain, exit 0
# and leave a parseable metrics dump whose serve.requests_shed /
# serve.tenant_rejections / serve.breaker_* counters match what the
# clients observed.

run_serve() {

REQUESTS="${SERVE_SOAK_REQUESTS:-40}"

# The serving model needs at least one servable rule (the daemon refuses
# an empty rule set), so this trains on the richer tablib profile rather
# than the minimal batch-soak configuration.
echo "chaos_soak: serve: training the serving model"
"$AUTOTEST" train --corpus tablib --columns 200 --centroids 30 \
    --synthetic 200 --shards 4 --max-retries 6 --out "$WORK/serve.sdc" \
    > /dev/null 2> "$WORK/serve_train.err" \
  || fail "serve: train exited $? ($(cat "$WORK/serve_train.err"))"

printf 'city,date\nseattle,6/1/2022\ntokyo,6/2/2022\nparis,junk\n' \
  > "$WORK/serve_table.csv"

# Two-tenant quota table: one hard-starved (its whole allowance is one
# request until a reload), one generous enough that the seeded phase
# never touches its limit. Unlisted tenants stay unlimited (no default
# row).
cat > "$WORK/quotas.conf" <<'EOF'
autotest.quotas.v1
# chaos-soak tenants
starved 0 1
generous 1000 100
EOF

# Tiny admission budget so the burst phase can saturate it; injected
# read, parse and budget-charge faults at low probability so the seeded
# phase exercises the structured-error paths without drowning in them.
# The breaker is tuned tight (3 failures, long cooldown) so the abuse
# phase trips it deterministically and it stays open through the drain.
"$AUTOTEST" serve --rules "$WORK/serve.sdc" --port 0 \
    --max-inflight 1 --queue-depth 1 --max-retries 6 \
    --tenant-quotas "$WORK/quotas.conf" \
    --breaker-failures 3 --breaker-cooldown-ms 60000 \
    --failpoints "serve.read:p=0.02,rules.parse:p=0.01,budget.charge:p=0.01,seed=99" \
    --metrics-dump "$WORK/serve_metrics.json" \
    2> "$WORK/serve.err" &
SERVE_PID=$!

# Readiness: the daemon prints its bound port once listening.
PORT=""
for _ in $(seq 1 300); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$WORK/serve.err" | head -1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null \
    || fail "serve: daemon died before listening ($(cat "$WORK/serve.err"))"
  sleep 0.1
done
[ -n "$PORT" ] || fail "serve: daemon never reported a port"
echo "chaos_soak: serve: daemon up on port $PORT (pid $SERVE_PID)"

# Phase 1: seeded mixed traffic. Documented exit classes only:
#   0 ok, 3 invalid-input (injected parse faults surfaced structurally),
#   5 io (injected serve.read faults answered as IO_ERROR), 6 resource/
#   deadline, 7 shed. Anything else — in particular a crash of the client
#   or daemon — fails the soak.
ok_count=0; fault_count=0; shed_count=0; breaker_trip_shed=0
for i in $(seq 1 "$REQUESTS"); do
  last_err="$WORK/client_last.err"
  case $(( i % 10 )) in
    0) "$AUTOTEST" query --reload --tenant generous --port "$PORT" \
         > /dev/null 2> "$last_err" ;;
    1|4|7) "$AUTOTEST" query --ping --tenant generous --port "$PORT" \
         > /dev/null 2> "$last_err" ;;
    *) "$AUTOTEST" query "$WORK/serve_table.csv" --port "$PORT" \
         --tenant generous --deadline-ms 2000 \
         > /dev/null 2> "$last_err" ;;
  esac
  rc=$?
  cat "$last_err" >> "$WORK/serve_clients.err"
  case "$rc" in
    0) ok_count=$(( ok_count + 1 )) ;;
    3|5|6) fault_count=$(( fault_count + 1 )) ;;
    7) # A breaker tripped by injected faults sheds with
       # reason=circuit_open; that class does not count toward
       # serve.requests_shed (it is a governor rejection, not an
       # admission shed), so keep the books separate.
       if grep -q 'reason=circuit_open' "$last_err"; then
         breaker_trip_shed=$(( breaker_trip_shed + 1 ))
       else
         shed_count=$(( shed_count + 1 ))
       fi ;;
    *) fail "serve: request $i exited $rc (not a documented class)" ;;
  esac
  kill -0 "$SERVE_PID" 2>/dev/null \
    || fail "serve: daemon died during seeded traffic (request $i)"
done
[ "$ok_count" -gt 0 ] \
  || fail "serve: no request succeeded across $REQUESTS seeded requests"
echo "chaos_soak: serve: $REQUESTS seeded requests ok" \
     "(ok=$ok_count faults=$fault_count shed=$shed_count)"

# Phase 2: overload bursts. 16 concurrent checks against a one-deep
# queue and one worker must produce structured sheds; retry a few rounds
# so a fast-draining scheduler cannot flake the assertion.
burst_shed=0
for round in $(seq 1 5); do
  rcfile_prefix="$WORK/burst_${round}_"
  burst_pids=""
  for j in $(seq 1 16); do
    { "$AUTOTEST" query "$WORK/serve_table.csv" --port "$PORT" \
        > /dev/null 2>> "$WORK/serve_clients.err"
      echo $? > "${rcfile_prefix}${j}.rc"
    } &
    burst_pids="$burst_pids $!"
  done
  for p in $burst_pids; do
    wait "$p" || true
  done
  for j in $(seq 1 16); do
    rc="$(cat "${rcfile_prefix}${j}.rc")"
    case "$rc" in
      0) ;;
      3|5|6) ;;
      7) burst_shed=$(( burst_shed + 1 )) ;;
      *) fail "serve: burst query exited $rc (not a documented class)" ;;
    esac
  done
  [ "$burst_shed" -gt 0 ] && break
done
[ "$burst_shed" -gt 0 ] \
  || fail "serve: no structured sheds across 5 overload bursts"
kill -0 "$SERVE_PID" 2>/dev/null || fail "serve: daemon died under overload"
echo "chaos_soak: serve: overload ok ($burst_shed structured sheds)"

# Phase 3: tenant quotas. The starved tenant's whole allowance is one
# request (rate 0, burst 1): the first ping is admitted, every further
# one is a structured exit-8 with reason=quota — and the generous tenant
# is untouched by its neighbour's exhaustion.
quota_shed=0
"$AUTOTEST" query --ping --tenant starved --port "$PORT" \
    > /dev/null 2>> "$WORK/serve_clients.err" \
  || fail "serve: starved tenant's first request exited $? (want 0)"
for i in 1 2; do
  "$AUTOTEST" query --ping --tenant starved --port "$PORT" \
      > /dev/null 2> "$WORK/quota_$i.err"
  rc=$?
  cat "$WORK/quota_$i.err" >> "$WORK/serve_clients.err"
  [ "$rc" -eq 8 ] \
    || fail "serve: starved tenant request $i exited $rc (want 8, quota)"
  grep -q 'reason=quota' "$WORK/quota_$i.err" \
    || fail "serve: quota rejection $i lacks reason=quota"
  quota_shed=$(( quota_shed + 1 ))
done
"$AUTOTEST" query --ping --tenant generous --port "$PORT" \
    > /dev/null 2>> "$WORK/serve_clients.err" \
  || fail "serve: generous tenant caught its neighbour's quota (exit $?)"
echo "chaos_soak: serve: quota ok ($quota_shed structured quota rejections)"

# Phase 4: circuit breaker. Three malformed tables from the abuser tenant
# are three consecutive check failures — exactly --breaker-failures — so
# the fourth and fifth requests (well-formed!) must shed with
# reason=circuit_open while the breaker cools down.
printf 'city\n"unterminated quote\n' > "$WORK/serve_bad_table.csv"
for i in 1 2 3; do
  "$AUTOTEST" query "$WORK/serve_bad_table.csv" --tenant abuser \
      --port "$PORT" > /dev/null 2>> "$WORK/serve_clients.err"
  rc=$?
  # Parse failure (3) normally; an injected budget.charge fault (6) also
  # counts as a breaker failure, so both keep the abuse deterministic.
  case "$rc" in
    3|6) ;;
    *) fail "serve: malformed table $i exited $rc (want 3 or 6)" ;;
  esac
done
breaker_shed=0
for i in 1 2; do
  "$AUTOTEST" query "$WORK/serve_table.csv" --tenant abuser \
      --port "$PORT" > /dev/null 2> "$WORK/breaker_$i.err"
  rc=$?
  cat "$WORK/breaker_$i.err" >> "$WORK/serve_clients.err"
  [ "$rc" -eq 7 ] \
    || fail "serve: post-trip abuser request $i exited $rc (want 7)"
  grep -q 'reason=circuit_open' "$WORK/breaker_$i.err" \
    || fail "serve: post-trip rejection $i lacks reason=circuit_open"
  breaker_shed=$(( breaker_shed + 1 ))
done
"$AUTOTEST" query "$WORK/serve_table.csv" --tenant generous \
    --deadline-ms 2000 --port "$PORT" \
    > /dev/null 2> "$WORK/breaker_other.err"
rc=$?
grep -q 'reason=circuit_open' "$WORK/breaker_other.err" \
  && fail "serve: the abuser's open breaker leaked onto another tenant"
cat "$WORK/breaker_other.err" >> "$WORK/serve_clients.err"
echo "chaos_soak: serve: breaker ok (tripped at 3, $breaker_shed circuit_open sheds)"

# Phase 5: graceful drain + metrics contract.
total_shed=$(( shed_count + burst_shed ))
kill -TERM "$SERVE_PID"
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=""
[ "$serve_rc" -eq 0 ] || fail "serve: daemon exited $serve_rc after SIGTERM"
grep -q 'serve: drained' "$WORK/serve.err" \
  || fail "serve: no drain summary in daemon stderr"
[ -s "$WORK/serve_metrics.json" ] || fail "serve: metrics dump missing"
grep -q '"schema":"autotest.metrics.v1"' "$WORK/serve_metrics.json" \
  || fail "serve: metrics dump is not an autotest.metrics.v1 document"
grep -q '"name":"serve.requests"' "$WORK/serve_metrics.json" \
  || fail "serve: metrics dump lacks serve.requests"
dumped_shed="$(sed -n \
  's/.*"name":"serve\.requests_shed","kind":"counter","value":\([0-9]*\).*/\1/p' \
  "$WORK/serve_metrics.json" | head -1)"
[ -n "$dumped_shed" ] \
  || fail "serve: metrics dump lacks a serve.requests_shed counter"
[ "$dumped_shed" -eq "$total_shed" ] \
  || fail "serve: serve.requests_shed=$dumped_shed but clients observed $total_shed sheds"

# Governance counters must agree with what the clients saw: every quota
# rejection, and every circuit_open shed (the deliberate abuse phase plus
# any breaker randomly tripped by injected faults in phase 1).
metric_value() {
  sed -n \
    "s/.*\"name\":\"$1\",\"kind\":\"counter\",\"value\":\([0-9]*\).*/\1/p" \
    "$WORK/serve_metrics.json" | head -1
}
dumped_quota="$(metric_value 'serve\.tenant_rejections')"
[ -n "$dumped_quota" ] \
  || fail "serve: metrics dump lacks serve.tenant_rejections"
[ "$dumped_quota" -eq "$quota_shed" ] \
  || fail "serve: serve.tenant_rejections=$dumped_quota but clients observed $quota_shed"
dumped_breaker_open="$(metric_value 'serve\.breaker_open_total')"
[ -n "$dumped_breaker_open" ] && [ "$dumped_breaker_open" -ge 1 ] \
  || fail "serve: serve.breaker_open_total=${dumped_breaker_open:-missing}, want >= 1"
dumped_breaker_rej="$(metric_value 'serve\.breaker_rejections')"
expected_breaker_rej=$(( breaker_shed + breaker_trip_shed ))
[ -n "$dumped_breaker_rej" ] \
  || fail "serve: metrics dump lacks serve.breaker_rejections"
[ "$dumped_breaker_rej" -eq "$expected_breaker_rej" ] \
  || fail "serve: serve.breaker_rejections=$dumped_breaker_rej but clients observed $expected_breaker_rej"
echo "chaos_soak: serve: drained clean, metrics dump consistent" \
     "(serve.requests_shed=$dumped_shed tenant_rejections=$dumped_quota" \
     "breaker_open_total=$dumped_breaker_open)"

}

case "$MODE" in
  batch) run_batch ;;
  serve) run_serve ;;
  all) run_batch; run_serve ;;
esac

echo "chaos_soak: PASS ($MODE)"
