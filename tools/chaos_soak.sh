#!/usr/bin/env bash
# Chaos soak for the autotest CLI (DESIGN.md §4e).
#
# Drives the tier-1 CLI under injected faults and asserts the retry &
# degradation contract end to end:
#
#   1. transient-only injection (all failpoints, p=0.05, code=io) across
#      N seeds: every train must complete and produce a rules file
#      byte-identical to the fault-free baseline — retries are invisible
#      in output;
#   2. permanent injection losing a within-quorum subset of shards: train
#      must succeed degraded and stamp lost-shard provenance into the
#      recipe, and check must accept the degraded rules;
#   3. permanent injection above the quorum: train must fail fast with the
#      structured invalid-input exit code, without burning retries.
#
# Usage: chaos_soak.sh <autotest-binary> [seeds]
#   seeds defaults to $CHAOS_SEEDS or 20.
#
# Registered as the `chaos_soak` ctest entry (wall-clock capped there);
# run_sanitized_tests.sh repeats it under ASan.

set -u

AUTOTEST="${1:?usage: chaos_soak.sh <autotest-binary> [seeds]}"
SEEDS="${2:-${CHAOS_SEEDS:-20}}"

if [ ! -x "$AUTOTEST" ]; then
  echo "chaos_soak: $AUTOTEST is not an executable" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/autotest_chaos.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Small but non-trivial training configuration: sharded, with enough
# columns that the shard loader, trainer fan-out and serializer all do
# real work, yet fast enough to soak many seeds inside the ctest cap.
TRAIN_ARGS=(--columns 100 --centroids 12 --synthetic 60 --shards 6
            --max-retries 6)

fail() {
  echo "chaos_soak: FAIL: $*" >&2
  exit 1
}

echo "chaos_soak: baseline fault-free train"
"$AUTOTEST" train "${TRAIN_ARGS[@]}" --out "$WORK/baseline.sdc" \
    > "$WORK/baseline.out" 2> "$WORK/baseline.err" \
  || fail "baseline train exited $? ($(cat "$WORK/baseline.err"))"
[ -s "$WORK/baseline.sdc.recipe" ] || fail "baseline recipe missing"
grep -q '^degraded' "$WORK/baseline.sdc.recipe" \
  && fail "baseline recipe claims degradation without faults"

# --- scenario 1: transient faults are retried into invisibility ---------

printf 'city,date\nseattle,6/1/2022\ntokyo,6/2/2022\nparis,junk\n' \
  > "$WORK/table.csv"

total_retries=0
for seed in $(seq 1 "$SEEDS"); do
  spec="all:p=0.05,code=io,seed=$seed"
  AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
      --out "$WORK/s$seed.sdc" \
      > "$WORK/s$seed.out" 2> "$WORK/s$seed.err" \
    || fail "seed $seed: train exited $? under $spec ($(cat "$WORK/s$seed.err"))"
  cmp -s "$WORK/baseline.sdc" "$WORK/s$seed.sdc" \
    || fail "seed $seed: rules differ from fault-free baseline under $spec"
  grep -q '^degraded' "$WORK/s$seed.sdc.recipe" \
    && fail "seed $seed: transient-only faults must not degrade the model"
  # Count masked retries surfaced by the shard-load report.
  r="$(sed -n 's/.*retries=\([0-9]*\).*/\1/p' "$WORK/s$seed.err" | head -1)"
  total_retries=$(( total_retries + ${r:-0} ))
  AT_FAILPOINTS="$spec" "$AUTOTEST" check "$WORK/table.csv" \
      --rules "$WORK/s$seed.sdc" --max-retries 6 \
      > /dev/null 2> "$WORK/c$seed.err" \
    || fail "seed $seed: check exited $? under $spec ($(cat "$WORK/c$seed.err"))"
done
[ "$total_retries" -gt 0 ] \
  || fail "no shard retries observed across $SEEDS seeds (p=0.05 over 6 shards)"
echo "chaos_soak: $SEEDS transient seeds ok, $total_retries shard retries masked"

# --- scenario 2: within-quorum permanent loss degrades with provenance --

spec="shard.read:p=0.4,code=dataloss,seed=7"  # loses shards 2,3 of 6
AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
    --shard-quorum 0.5 --out "$WORK/degraded.sdc" \
    > /dev/null 2> "$WORK/degraded.err" \
  || fail "degraded train exited $? under $spec ($(cat "$WORK/degraded.err"))"
grep -q '^degraded 2/6 2:DATA_LOSS,3:DATA_LOSS$' "$WORK/degraded.sdc.recipe" \
  || fail "degraded provenance missing or wrong: $(cat "$WORK/degraded.sdc.recipe")"
grep -q 'degraded mode' "$WORK/degraded.err" \
  || fail "degraded train did not warn about degraded mode"
"$AUTOTEST" check "$WORK/table.csv" --rules "$WORK/degraded.sdc" \
    > /dev/null 2> "$WORK/degraded_check.err" \
  || fail "check of degraded rules exited $?"
grep -q 'rebuilding that corpus' "$WORK/degraded_check.err" \
  || fail "check did not rebuild the degraded corpus from provenance"
echo "chaos_soak: degraded scenario ok (2/6 shards lost, provenance stamped)"

# --- scenario 3: above-quorum permanent loss fails fast -----------------

spec="shard.read=on,code=dataloss"
AT_FAILPOINTS="$spec" "$AUTOTEST" train "${TRAIN_ARGS[@]}" \
    --out "$WORK/deadloss.sdc" > /dev/null 2> "$WORK/deadloss.err"
rc=$?
[ "$rc" -eq 3 ] \
  || fail "all-shards-dataloss train exited $rc, want 3 (invalid input)"
grep -q 'quorum missed' "$WORK/deadloss.err" \
  || fail "fast-fail error does not name the missed quorum"
grep -q 'DATA_LOSS' "$WORK/deadloss.err" \
  || fail "fast-fail error does not carry the permanent code"
grep -q 'after 1 attempt(s)' "$WORK/deadloss.err" \
  || fail "permanent faults must not be retried"
[ -e "$WORK/deadloss.sdc" ] && fail "failed train left a rules file behind"
echo "chaos_soak: fast-fail scenario ok (DATA_LOSS, no retries)"

echo "chaos_soak: PASS"
