// autotest — command-line front end for the Auto-Test library.
//
//   autotest train --corpus relational --columns 2000 --out rules.sdc
//   autotest check data.csv more.csv --rules rules.sdc
//   autotest check data.csv                       (trains a quick model)
//   autotest rules rules.sdc
//   autotest serve --rules rules.sdc --port N     (long-lived daemon)
//   autotest query data.csv --port N              (client for serve)
//
// Rule files record the training recipe (corpus profile, sizes, shard
// count) in a side header so `check` can rebuild the matching evaluation
// functions. When training degraded to a shard quorum (lost shards under
// faults), the recipe also records which shards were lost and why, so
// `check` rebuilds the exact same degraded corpus instead of silently
// unresolving every rule.
//
// Transient I/O failures (kIoError / kResourceExhausted, including injected
// chaos faults) are retried with deterministic exponential backoff;
// permanent failures (kDataLoss / kInvalidArgument) fail fast. See
// DESIGN.md §4e for the retry & degradation contract.
//
// Exit codes (one per failure class, so scripts can branch on the kind of
// failure rather than scraping stderr):
//   0  success
//   1  internal error
//   2  usage error (bad command line)
//   3  invalid input (malformed/invalid CSV, rule file or recipe)
//   4  missing file (CSV, rules or recipe not found)
//   5  I/O failure (read/write/rename failed, injected I/O faults)
//   6  resource exhausted (input over limits, injected allocation faults,
//      expired request deadlines)
//   7  server refused / shed (client-mode RESOURCE_EXHAUSTED: the serving
//      tier shed the request under load, the tenant's circuit breaker is
//      open, or the server is unreachable — retryable with backoff)
//   8  quota rejected (client-mode RESOURCE_EXHAUSTED with reason=quota:
//      the tenant's token bucket is empty; retrying immediately cannot
//      help until the bucket refills)

#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/auto_test.h"
#include "core/serialization.h"
#include "datagen/corpus_gen.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "table/csv.h"
#include "table/shard_loader.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/parallel/thread_pool.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using namespace autotest;
using util::Result;
using util::Status;
using util::StatusCode;

// Human-readable report lines go here. Defaults to stdout; main() moves
// it to stderr under `--metrics-dump=-` so stdout carries exactly one
// machine-readable JSON document.
FILE* g_report = stdout;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInvalidInput = 3;
constexpr int kExitNotFound = 4;
constexpr int kExitIo = 5;
constexpr int kExitResource = 6;
constexpr int kExitShed = 7;
constexpr int kExitQuota = 8;

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kDataLoss:
      return kExitInvalidInput;
    case StatusCode::kNotFound:
      return kExitNotFound;
    case StatusCode::kIoError:
      return kExitIo;
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return kExitResource;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

// Prints the structured diagnostic and maps it to the exit code.
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

// One retry policy for every CLI-level I/O operation (recipe/rules
// load/save, per-table CSV reads, shard loads). --max-retries N means N
// retries beyond the first attempt. Backoffs are kept short: the CLI
// retries in-process faults and local-disk hiccups, not remote services.
util::RetryPolicy CliRetryPolicy(size_t max_retries) {
  util::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(max_retries) + 1;
  policy.initial_backoff_micros = 5'000;  // 5 ms
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 100'000;  // 100 ms
  return policy;
}

/// Degraded-mode provenance: which shards were lost at train time and the
/// final StatusCode each died with. Recorded in the recipe so `check` can
/// rebuild the exact degraded corpus.
struct LostShard {
  size_t shard = 0;
  StatusCode code = StatusCode::kInternal;
};

struct Recipe {
  std::string corpus = "relational";
  size_t columns = 2000;
  size_t centroids = 120;
  size_t synthetic = 800;
  /// Corpus generation shards; 1 = monolithic (and bit-compatible with
  /// pre-sharding recipe files, which load as shards=1).
  size_t shards = 8;
  std::vector<LostShard> lost;  // empty = trained on the full corpus
};

bool IsKnownCorpus(const std::string& name) {
  return name == "relational" || name == "spreadsheet" || name == "tablib";
}

std::string RecipePath(const std::string& rules_path) {
  return rules_path + ".recipe";
}

[[nodiscard]] Status ValidateRecipe(const Recipe& r,
                                    const std::string& source) {
  if (!IsKnownCorpus(r.corpus)) {
    return util::InvalidArgumentError(
        source + ": field 'corpus' must be relational, spreadsheet or "
        "tablib, got '" + r.corpus + "'");
  }
  if (r.columns == 0) {
    return util::InvalidArgumentError(source +
                                      ": field 'columns' must be positive");
  }
  if (r.centroids == 0) {
    return util::InvalidArgumentError(
        source + ": field 'centroids' must be positive");
  }
  if (r.shards == 0) {
    return util::InvalidArgumentError(source +
                                      ": field 'shards' must be positive");
  }
  if (r.lost.size() >= r.shards) {
    return util::InvalidArgumentError(
        source + ": degraded provenance loses all " +
        std::to_string(r.shards) + " shards");
  }
  for (const LostShard& l : r.lost) {
    if (l.shard >= r.shards) {
      return util::InvalidArgumentError(
          source + ": degraded shard index " + std::to_string(l.shard) +
          " out of range (have " + std::to_string(r.shards) + " shards)");
    }
  }
  return Status::Ok();
}

std::string FormatDegradedLine(const Recipe& r) {
  std::string out = "degraded " + std::to_string(r.lost.size()) + "/" +
                    std::to_string(r.shards);
  for (size_t i = 0; i < r.lost.size(); ++i) {
    out += i == 0 ? " " : ",";
    out += std::to_string(r.lost[i].shard);
    out += ":";
    out += util::StatusCodeName(r.lost[i].code);
  }
  return out;
}

[[nodiscard]] Status ParseDegradedLine(const std::string& line,
                                       const std::string& source,
                                       Recipe* r) {
  auto malformed = [&](const std::string& why) {
    return util::DataLossError(
        source + ": degraded provenance line is malformed (" + why +
        "); want: degraded <lost>/<total> <shard>:<CODE>,...");
  };
  std::istringstream in(line);
  std::string tag, counts, entries;
  if (!(in >> tag >> counts >> entries) || tag != "degraded") {
    return malformed("expected 3 fields");
  }
  size_t slash = counts.find('/');
  if (slash == std::string::npos) return malformed("missing '/' in counts");
  char* endp = nullptr;
  unsigned long long lost_n =
      std::strtoull(counts.substr(0, slash).c_str(), &endp, 10);
  unsigned long long total_n =
      std::strtoull(counts.substr(slash + 1).c_str(), &endp, 10);
  if (total_n != r->shards) {
    return malformed("total " + std::to_string(total_n) +
                     " does not match shard count " +
                     std::to_string(r->shards));
  }
  for (std::string_view entry : util::Split(entries, ',')) {
    size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      return malformed("entry '" + std::string(entry) + "' missing ':'");
    }
    LostShard l;
    std::string idx(entry.substr(0, colon));
    char* idx_end = nullptr;
    l.shard = static_cast<size_t>(std::strtoull(idx.c_str(), &idx_end, 10));
    if (idx_end != idx.c_str() + idx.size()) {
      return malformed("shard index '" + idx + "' is not a number");
    }
    auto code = util::StatusCodeFromName(entry.substr(colon + 1));
    if (!code.has_value()) {
      return malformed("unknown status code '" +
                       std::string(entry.substr(colon + 1)) + "'");
    }
    l.code = *code;
    r->lost.push_back(l);
  }
  if (r->lost.size() != lost_n) {
    return malformed("counted " + std::to_string(r->lost.size()) +
                     " entries, header says " + std::to_string(lost_n));
  }
  return Status::Ok();
}

// Atomic like TrySaveRulesToFile: temp file + rename, so an interrupted
// train never leaves a torn recipe next to a valid rules file.
[[nodiscard]] Status TrySaveRecipe(const Recipe& r,
                                   const std::string& rules_path) {
  if (auto injected = util::FailpointFiresCode(util::kFpRecipeSave,
                                               StatusCode::kIoError)) {
    return util::InjectedFault(*injected, util::kFpRecipeSave)
        .WithContext("saving recipe for " + rules_path);
  }
  const std::string path = RecipePath(rules_path);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return util::IoError("cannot open temp file " + tmp);
    out << r.corpus << " " << r.columns << " " << r.centroids << " "
        << r.synthetic << " " << r.shards << "\n";
    if (!r.lost.empty()) out << FormatDegradedLine(r) << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return util::IoError("write failure on temp file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

[[nodiscard]] Result<Recipe> TryLoadRecipe(const std::string& rules_path) {
  const std::string path = RecipePath(rules_path);
  if (auto injected = util::FailpointFiresCode(util::kFpRecipeLoad,
                                               StatusCode::kIoError)) {
    return util::InjectedFault(*injected, util::kFpRecipeLoad)
        .WithContext("loading recipe " + path);
  }
  std::ifstream in(path);
  if (!in) return util::NotFoundError("cannot open recipe " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return util::DataLossError("recipe " + path + " is empty");
  }
  Recipe r;
  {
    std::istringstream first(line);
    if (!(first >> r.corpus >> r.columns >> r.centroids >> r.synthetic)) {
      return util::DataLossError(
          "recipe " + path +
          " is malformed (want: <corpus> <columns> <centroids> <synthetic> "
          "[shards])");
    }
    // The 5th field arrived with sharded generation; recipes written
    // before it trained on the monolithic (single-shard) corpus.
    if (!(first >> r.shards)) r.shards = 1;
  }
  if (std::getline(in, line) && !line.empty()) {
    AT_RETURN_IF_ERROR(ParseDegradedLine(line, "recipe " + path, &r));
  }
  AT_RETURN_IF_ERROR(ValidateRecipe(r, "recipe " + path));
  return r;
}

datagen::CorpusProfile ProfileFor(const Recipe& r) {
  if (r.corpus == "spreadsheet") {
    return datagen::SpreadsheetTablesProfile(r.columns);
  }
  if (r.corpus == "tablib") {
    return datagen::TablibProfile(r.columns);
  }
  return datagen::RelationalTablesProfile(r.columns);
}

/// Builds the training corpus shard-by-shard. When the recipe carries
/// degraded provenance, only the surviving shards are generated — all of
/// them required — so the rebuilt corpus is byte-identical to the one the
/// rules were trained on. Otherwise all shards are generated under
/// `quorum`, and `report` records any degradation for the caller to stamp.
[[nodiscard]] Result<table::Corpus> TryBuildCorpus(
    const Recipe& r, const util::RetryPolicy& retry, double quorum,
    table::ShardLoadReport* report) {
  table::ShardLoadOptions options;
  options.retry = retry;
  options.min_shard_fraction = quorum;
  std::vector<size_t> include;
  if (!r.lost.empty()) {
    std::vector<bool> is_lost(r.shards, false);
    for (const LostShard& l : r.lost) is_lost[l.shard] = true;
    for (size_t s = 0; s < r.shards; ++s) {
      if (!is_lost[s]) include.push_back(s);
    }
    options.min_shard_fraction = 1.0;  // need exactly the survivors
    // The masked rebuild never attempts the provenance-lost shards, so
    // the loader cannot count them; surface the degradation here so a
    // `--metrics-dump` on a degraded check still reports shard.lost.
    metrics::Registry::Global()
        .GetCounter(metrics::kMShardLost)
        .Increment(r.lost.size());
    metrics::Registry::Global()
        .GetCounter(metrics::kMShardDegradedLoads)
        .Increment();
  }
  return datagen::TryGenerateCorpusSharded(ProfileFor(r), r.shards, options,
                                           report, include);
}

[[nodiscard]] Result<core::AutoTest> TryTrainOnCorpus(const Recipe& r,
                                                      table::Corpus corpus) {
  std::fprintf(stderr, "training on %s corpus (%zu columns, %zu shards)...\n",
               r.corpus.c_str(), corpus.size(), r.shards);
  core::AutoTestConfig config;
  config.eval_options.embedding_centroids_per_model = r.centroids;
  config.train_options.synthetic_count = r.synthetic;
  core::AutoTest at = core::AutoTest::Train(corpus, config);
  size_t skipped = at.model().evals_skipped;
  if (skipped > 0) {
    size_t total = at.evals().size();
    if (skipped == total) {
      return util::ResourceExhaustedError(
          "all " + std::to_string(total) +
          " evaluation families failed during training");
    }
    std::fprintf(stderr,
                 "warning: %zu/%zu evaluation families skipped under "
                 "injected faults; training degraded\n",
                 skipped, total);
  }
  return at;
}

/// Corpus build + train, honoring degraded provenance. Prints the shard
/// report when anything noteworthy (retries or lost shards) happened.
[[nodiscard]] Result<core::AutoTest> TryTrainFromRecipe(
    const Recipe& r, const util::RetryPolicy& retry, double quorum = 1.0,
    table::ShardLoadReport* report_out = nullptr) {
  table::ShardLoadReport report;
  auto corpus = TryBuildCorpus(r, retry, quorum, &report);
  if (report.degraded() || report.total_retries > 0) {
    std::fprintf(stderr, "%s\n", report.Summary().c_str());
  }
  if (report_out != nullptr) *report_out = report;
  if (!corpus.ok()) {
    return Status(corpus.status()).WithContext("building training corpus");
  }
  return TryTrainOnCorpus(r, std::move(*corpus));
}

// Exception-free size parse; the CLI must not terminate on `--columns xyz`.
bool ParseSize(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  char* endp = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &endp, 10);
  if (endp != s.c_str() + s.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseFraction(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* endp = nullptr;
  double v = std::strtod(s.c_str(), &endp);
  if (endp != s.c_str() + s.size() || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

int CmdTrain(int argc, char** argv) {
  Recipe recipe;
  std::string out_path = "rules.sdc";
  size_t max_retries = 3;
  double quorum = 1.0;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() { return std::string(i + 1 < argc ? argv[++i] : ""); };
    bool ok = true;
    if (a == "--corpus") recipe.corpus = next();
    else if (a == "--columns") ok = ParseSize(next(), &recipe.columns);
    else if (a == "--centroids") ok = ParseSize(next(), &recipe.centroids);
    else if (a == "--synthetic") ok = ParseSize(next(), &recipe.synthetic);
    else if (a == "--shards") ok = ParseSize(next(), &recipe.shards);
    else if (a == "--max-retries") ok = ParseSize(next(), &max_retries);
    else if (a == "--out") out_path = next();
    else if (a == "--shard-quorum") {
      if (!ParseFraction(next(), &quorum)) {
        std::fprintf(stderr,
                     "option --shard-quorum wants a fraction in [0, 1]\n");
        return kExitUsage;
      }
    } else {
      std::fprintf(stderr, "unknown train option %s\n", a.c_str());
      return kExitUsage;
    }
    if (!ok) {
      std::fprintf(stderr, "option %s wants a non-negative integer\n",
                   a.c_str());
      return kExitUsage;
    }
  }
  Status valid = ValidateRecipe(recipe, "command line");
  if (!valid.ok()) return Fail(valid);
  const util::RetryPolicy retry = CliRetryPolicy(max_retries);

  table::ShardLoadReport report;
  auto at = TryTrainFromRecipe(recipe, retry, quorum, &report);
  if (!at.ok()) return Fail(at.status());
  // Stamp which shards the model was actually trained without, so `check`
  // rebuilds this exact degraded corpus.
  for (const table::ShardOutcome& outcome : report.outcomes) {
    if (outcome.code != StatusCode::kOk) {
      recipe.lost.push_back(LostShard{outcome.shard, outcome.code});
    }
  }

  auto sel = at->Select(core::Variant::kFineSelect);
  std::vector<core::Sdc> rules;
  for (size_t i : sel.selected) rules.push_back(at->model().constraints[i]);
  Status saved = util::RetryCall(retry, util::RealClock(), /*stream=*/1001,
                                 [&] {
                                   return core::TrySaveRulesToFile(rules,
                                                                   out_path);
                                 });
  if (!saved.ok()) return Fail(saved);
  saved = util::RetryCall(retry, util::RealClock(), /*stream=*/1002,
                          [&] { return TrySaveRecipe(recipe, out_path); });
  if (!saved.ok()) return Fail(saved);
  if (!recipe.lost.empty()) {
    std::fprintf(stderr,
                 "warning: trained in degraded mode (%zu/%zu shards lost); "
                 "provenance recorded in %s\n",
                 recipe.lost.size(), recipe.shards,
                 RecipePath(out_path).c_str());
  }
  std::fprintf(g_report,
               "learned %zu constraints, distilled %zu rules -> %s\n",
               at->model().constraints.size(), rules.size(),
               out_path.c_str());
  return kExitOk;
}

// Checks one table against the predictor; returns the per-table status.
[[nodiscard]] Status CheckOneTable(const std::string& csv_path,
                                   const core::SdcPredictor& predictor,
                                   const util::RetryPolicy& retry,
                                   uint64_t stream, size_t* errors_found) {
  auto table = util::RetryCall(retry, util::RealClock(), stream, [&] {
    return table::TryReadCsvFile(csv_path);
  });
  if (!table.ok()) return table.status();

  std::fprintf(g_report, "checking %s with %zu rules\n", csv_path.c_str(),
               predictor.num_rules());
  size_t total = 0;
  size_t columns_skipped = 0;
  for (const auto& column : table->columns) {
    if (table::IsMostlyNumeric(column)) continue;
    auto detections = predictor.TryPredict(column);
    if (!detections.ok()) {
      // Column-level degradation: report, count, move on — one poisoned
      // column must not take down the whole table.
      std::fprintf(stderr, "warning: skipping column '%s': %s\n",
                   column.name.c_str(),
                   detections.status().ToString().c_str());
      ++columns_skipped;
      continue;
    }
    for (const auto& d : *detections) {
      ++total;
      std::fprintf(g_report, "%s:%zu  \"%s\"  conf=%.2f\n    %s\n",
                   column.name.c_str(), d.row + 2, d.value.c_str(),
                   d.confidence, d.explanation.c_str());
    }
  }
  if (columns_skipped > 0) {
    std::fprintf(stderr, "warning: %zu column(s) skipped under faults\n",
                 columns_skipped);
  }
  std::fprintf(g_report, "%s: %zu potential error(s) found\n",
               csv_path.c_str(), total);
  *errors_found += total;
  return Status::Ok();
}

int CmdCheck(int argc, char** argv) {
  std::vector<std::string> csv_paths;
  std::string rules_path;
  size_t max_retries = 3;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--rules" && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (a == "--max-retries" && i + 1 < argc) {
      if (!ParseSize(argv[++i], &max_retries)) {
        std::fprintf(stderr,
                     "option --max-retries wants a non-negative integer\n");
        return kExitUsage;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown check option %s\n", a.c_str());
      return kExitUsage;
    } else {
      csv_paths.push_back(a);
    }
  }
  if (csv_paths.empty()) {
    std::fprintf(stderr,
                 "usage: autotest check <file.csv> [more.csv...] "
                 "[--rules f] [--max-retries n]\n");
    return kExitUsage;
  }
  const util::RetryPolicy retry = CliRetryPolicy(max_retries);

  Recipe recipe;
  if (!rules_path.empty()) {
    auto loaded_recipe =
        util::RetryCall(retry, util::RealClock(), /*stream=*/1003,
                        [&] { return TryLoadRecipe(rules_path); });
    if (loaded_recipe.ok()) {
      recipe = *loaded_recipe;
    } else if (loaded_recipe.status().code() != StatusCode::kNotFound) {
      // A missing recipe falls back to the default; a corrupt or
      // unreadable one is a hard error (it would rebuild the wrong
      // evaluation functions and silently unresolve every rule).
      return Fail(loaded_recipe.status());
    }
  } else {
    recipe.columns = 1500;  // quick in-process training
  }
  if (!recipe.lost.empty()) {
    std::fprintf(stderr,
                 "note: rules were trained in degraded mode (%zu/%zu shards "
                 "lost); rebuilding that corpus\n",
                 recipe.lost.size(), recipe.shards);
  }
  auto at = TryTrainFromRecipe(recipe, retry);
  if (!at.ok()) return Fail(at.status());

  std::vector<core::Sdc> rules;
  if (!rules_path.empty()) {
    size_t unresolved = 0;
    auto loaded =
        util::RetryCall(retry, util::RealClock(), /*stream=*/1004, [&] {
          return core::TryLoadRulesFromFile(rules_path, at->evals(),
                                            &unresolved);
        });
    if (!loaded.ok()) return Fail(loaded.status());
    if (unresolved > 0) {
      std::fprintf(stderr, "warning: %zu rules reference unknown "
                   "evaluation functions and were skipped\n", unresolved);
    }
    rules = std::move(*loaded);
  } else {
    auto sel = at->Select(core::Variant::kFineSelect);
    for (size_t i : sel.selected) {
      rules.push_back(at->model().constraints[i]);
    }
  }
  core::SdcPredictor predictor(std::move(rules));
  if (predictor.skipped_rules() > 0) {
    std::fprintf(stderr,
                 "warning: %zu invalid/unresolved rules dropped by the "
                 "predictor\n",
                 predictor.skipped_rules());
  }

  // Per-table isolation: one unreadable table is reported as a structured
  // entry and the batch moves on, rather than aborting the run. The exit
  // code reflects the first failure.
  size_t errors_found = 0;
  size_t tables_failed = 0;
  int first_failure_exit = kExitOk;
  for (size_t t = 0; t < csv_paths.size(); ++t) {
    Status st = CheckOneTable(csv_paths[t], predictor, retry,
                              /*stream=*/2000 + t, &errors_found);
    if (!st.ok()) {
      std::fprintf(stderr, "error: table %s: %s\n", csv_paths[t].c_str(),
                   st.ToString().c_str());
      ++tables_failed;
      if (first_failure_exit == kExitOk) first_failure_exit = ExitCodeFor(st);
    }
  }
  if (csv_paths.size() > 1 || tables_failed > 0) {
    std::fprintf(g_report,
                 "checked %zu/%zu table(s), %zu failed, "
                 "%zu potential error(s) found\n",
                 csv_paths.size() - tables_failed, csv_paths.size(),
                 tables_failed, errors_found);
  }
  return first_failure_exit;
}

// ---------------------------------------------------------------------------
// The serving tier: `autotest serve` (daemon / --once) and `autotest
// query` (client). See DESIGN.md §4h for the wire and robustness
// contract.
// ---------------------------------------------------------------------------

// SIGTERM/SIGINT request a graceful drain; SIGHUP requests a rule reload.
// Handlers only touch lock-free flags.
volatile std::sig_atomic_t g_serve_stop = 0;
volatile std::sig_atomic_t g_serve_reload = 0;

void HandleStopSignal(int) { g_serve_stop = 1; }
void HandleReloadSignal(int) { g_serve_reload = 1; }

// mtime of `path`, or -1 when unreadable (for --reload-watch polling).
int64_t FileMtime(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtime);
}

/// Trains the serving-side evaluation functions from the rules file's
/// recipe (mirroring `check`: a missing recipe falls back to the default,
/// a corrupt one is a hard error).
[[nodiscard]] Result<core::AutoTest> TryBuildServingModel(
    const std::string& rules_path, const util::RetryPolicy& retry) {
  Recipe recipe;
  auto loaded_recipe =
      util::RetryCall(retry, util::RealClock(), /*stream=*/1003,
                      [&] { return TryLoadRecipe(rules_path); });
  if (loaded_recipe.ok()) {
    recipe = *loaded_recipe;
  } else if (loaded_recipe.status().code() != StatusCode::kNotFound) {
    return loaded_recipe.status();
  }
  if (!recipe.lost.empty()) {
    std::fprintf(stderr,
                 "note: rules were trained in degraded mode (%zu/%zu shards "
                 "lost); rebuilding that corpus\n",
                 recipe.lost.size(), recipe.shards);
  }
  return TryTrainFromRecipe(recipe, retry);
}

int CmdServe(int argc, char** argv) {
  std::string rules_path;
  serve::ServeOptions options;
  size_t max_retries = 3;
  size_t port = 0;
  size_t max_inflight = 4;
  size_t queue_depth = 16;
  size_t default_deadline_ms = 10'000;
  size_t drain_timeout_ms = 5'000;
  std::string tenant_quotas_path;
  size_t max_request_bytes = uint64_t{64} << 20;
  size_t max_request_rows = 1'000'000;
  size_t max_request_cells = 8'000'000;
  size_t breaker_failures = 5;
  size_t breaker_cooldown_ms = 5'000;
  bool reload_watch = false;
  bool once = false;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() { return std::string(i + 1 < argc ? argv[++i] : ""); };
    bool ok = true;
    if (a == "--rules") rules_path = next();
    else if (a == "--port") ok = ParseSize(next(), &port);
    else if (a == "--max-inflight") ok = ParseSize(next(), &max_inflight);
    else if (a == "--queue-depth") ok = ParseSize(next(), &queue_depth);
    else if (a == "--default-deadline-ms")
      ok = ParseSize(next(), &default_deadline_ms);
    else if (a == "--drain-timeout-ms")
      ok = ParseSize(next(), &drain_timeout_ms);
    else if (a == "--max-retries") ok = ParseSize(next(), &max_retries);
    else if (a == "--tenant-quotas") tenant_quotas_path = next();
    else if (a == "--max-request-bytes")
      ok = ParseSize(next(), &max_request_bytes);
    else if (a == "--max-request-rows")
      ok = ParseSize(next(), &max_request_rows);
    else if (a == "--max-request-cells")
      ok = ParseSize(next(), &max_request_cells);
    else if (a == "--breaker-failures")
      ok = ParseSize(next(), &breaker_failures);
    else if (a == "--breaker-cooldown-ms")
      ok = ParseSize(next(), &breaker_cooldown_ms);
    else if (a == "--reload-watch") reload_watch = true;
    else if (a == "--once") once = true;
    else {
      std::fprintf(stderr, "unknown serve option %s\n", a.c_str());
      return kExitUsage;
    }
    if (!ok) {
      std::fprintf(stderr, "option %s wants a non-negative integer\n",
                   a.c_str());
      return kExitUsage;
    }
  }
  if (rules_path.empty()) {
    std::fprintf(stderr,
                 "usage: autotest serve --rules rules.sdc [--port N] "
                 "[--max-inflight K] [--queue-depth Q] "
                 "[--default-deadline-ms D] [--drain-timeout-ms T] "
                 "[--tenant-quotas file] [--max-request-bytes B] "
                 "[--max-request-rows R] [--max-request-cells C] "
                 "[--breaker-failures N] [--breaker-cooldown-ms D] "
                 "[--reload-watch] [--once]\n");
    return kExitUsage;
  }
  if (breaker_failures == 0) {
    std::fprintf(stderr, "option --breaker-failures must be positive\n");
    return kExitUsage;
  }
  if (port > 65535) {
    std::fprintf(stderr, "option --port wants a value in [0, 65535]\n");
    return kExitUsage;
  }
  if (max_inflight == 0 || queue_depth == 0) {
    std::fprintf(stderr,
                 "options --max-inflight and --queue-depth must be "
                 "positive\n");
    return kExitUsage;
  }
  if (default_deadline_ms > static_cast<size_t>(serve::kMaxDeadlineMs)) {
    std::fprintf(stderr,
                 "option --default-deadline-ms wants a value in [0, %lld]\n",
                 static_cast<long long>(serve::kMaxDeadlineMs));
    return kExitUsage;
  }
  options.port = static_cast<uint16_t>(port);
  options.max_inflight = max_inflight;
  options.queue_depth = queue_depth;
  options.default_deadline_micros =
      static_cast<int64_t>(default_deadline_ms) * 1000;
  options.drain_timeout_micros =
      static_cast<int64_t>(drain_timeout_ms) * 1000;
  options.max_request_bytes = max_request_bytes;
  options.max_request_rows = max_request_rows;
  options.max_request_cells = max_request_cells;

  // Per-tenant governance: the governor owns the token buckets and
  // circuit breakers and must outlive the server. A missing/malformed
  // quota file fails startup fast — a daemon silently serving without
  // its configured quotas is worse than one that refuses to start.
  util::CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = static_cast<int>(breaker_failures);
  breaker_options.cooldown_micros =
      static_cast<int64_t>(breaker_cooldown_ms) * 1000;
  serve::TenantGovernor governor(breaker_options, &util::RealClock());
  if (!tenant_quotas_path.empty()) {
    Status quotas = governor.TryLoadQuotas(tenant_quotas_path);
    if (!quotas.ok()) return Fail(quotas);
    std::fprintf(stderr, "serve: tenant quotas loaded from %s\n",
                 tenant_quotas_path.c_str());
  }
  options.governor = &governor;

  // An impatient client that closes its socket before reading its
  // response must be an EPIPE on that one write, never a process-killing
  // SIGPIPE (belt to WriteExact's MSG_NOSIGNAL braces).
  std::signal(SIGPIPE, SIG_IGN);

  const util::RetryPolicy retry = CliRetryPolicy(max_retries);
  auto at = TryBuildServingModel(rules_path, retry);
  if (!at.ok()) return Fail(at.status());

  serve::SnapshotStore store(&at->evals(), rules_path);
  Status loaded = util::RetryCall(retry, util::RealClock(), /*stream=*/1005,
                                  [&] { return store.TryReload(); });
  if (!loaded.ok()) {
    return Fail(Status(loaded).WithContext("loading the initial rule set"));
  }
  std::fprintf(stderr, "serve: rule set v%llu loaded from %s (%zu rules)\n",
               static_cast<unsigned long long>(store.version()),
               rules_path.c_str(), store.Get()->predictor().num_rules());

  if (once) {
    // Test mode: one unframed request payload on stdin, one response
    // payload on stdout, no sockets, no threads.
    std::ostringstream in;
    in << std::cin.rdbuf();
    serve::Response response = serve::HandlePayload(
        in.str(), store, options, /*admitted_micros=*/-1);
    std::string payload = serve::SerializeResponse(response);
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    if (response.code == StatusCode::kOk) return kExitOk;
    return ExitCodeFor(Status(response.code, "request failed"));
  }

  serve::Server server(&store, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::fprintf(stderr,
               "serve: listening on 127.0.0.1:%u (max-inflight=%zu "
               "queue-depth=%zu)\n",
               server.port(), max_inflight, queue_depth);
  std::fflush(stderr);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGHUP, HandleReloadSignal);

  int64_t last_mtime = FileMtime(rules_path);
  int64_t watch_countdown_micros = 0;
  while (g_serve_stop == 0 && !server.stop_requested()) {
    util::RealClock().SleepMicros(50'000);
    if (g_serve_reload != 0) {
      g_serve_reload = 0;
      Status st = store.TryReload();
      if (st.ok()) {
        std::fprintf(stderr, "serve: reloaded rule set -> v%llu\n",
                     static_cast<unsigned long long>(store.version()));
      } else {
        std::fprintf(stderr, "serve: reload failed, keeping v%llu: %s\n",
                     static_cast<unsigned long long>(store.version()),
                     st.ToString().c_str());
      }
      // Quotas ride the same reload trigger; a bad file keeps the old
      // table serving (load-validate-then-swap inside the governor).
      Status qst = governor.TryReloadQuotas();
      if (!qst.ok()) {
        std::fprintf(stderr,
                     "serve: quota reload failed, keeping old table: %s\n",
                     qst.ToString().c_str());
      }
    }
    if (reload_watch) {
      watch_countdown_micros -= 50'000;
      if (watch_countdown_micros <= 0) {
        watch_countdown_micros = 500'000;  // poll mtime twice a second
        int64_t mtime = FileMtime(rules_path);
        if (mtime != -1 && mtime != last_mtime) {
          last_mtime = mtime;
          g_serve_reload = 1;  // picked up on the next tick
        }
      }
    }
  }

  std::fprintf(stderr, "serve: draining...\n");
  serve::DrainReport report = server.StopAndDrain();
  std::fprintf(stderr,
               "serve: drained %s(completed=%llu shed=%llu "
               "drain-shed=%llu)\n",
               report.drained_clean ? "clean " : "",
               static_cast<unsigned long long>(report.completed),
               static_cast<unsigned long long>(report.shed),
               static_cast<unsigned long long>(report.drain_shed));
  return kExitOk;
}

int CmdQuery(int argc, char** argv) {
  std::string csv_path;
  std::string host = "127.0.0.1";
  std::string table_name;
  std::string tenant;
  std::string verb = "check";
  size_t port = 0;
  size_t deadline_ms = 0;
  size_t retries = 0;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() { return std::string(i + 1 < argc ? argv[++i] : ""); };
    bool ok = true;
    if (a == "--host") host = next();
    else if (a == "--port") ok = ParseSize(next(), &port);
    else if (a == "--deadline-ms") ok = ParseSize(next(), &deadline_ms);
    else if (a == "--table") table_name = next();
    else if (a == "--tenant") tenant = next();
    else if (a == "--retries") ok = ParseSize(next(), &retries);
    else if (a == "--ping") verb = "ping";
    else if (a == "--metrics") verb = "metrics";
    else if (a == "--reload") verb = "reload";
    else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown query option %s\n", a.c_str());
      return kExitUsage;
    } else {
      csv_path = a;
    }
    if (!ok) {
      std::fprintf(stderr, "option %s wants a non-negative integer\n",
                   a.c_str());
      return kExitUsage;
    }
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr,
                 "usage: autotest query [file.csv] --port N [--host H] "
                 "[--deadline-ms D] [--table name] [--tenant T] "
                 "[--retries N] [--ping|--metrics|--reload]\n");
    return kExitUsage;
  }
  if (deadline_ms > static_cast<size_t>(serve::kMaxDeadlineMs)) {
    std::fprintf(stderr, "option --deadline-ms wants a value in [0, %lld]\n",
                 static_cast<long long>(serve::kMaxDeadlineMs));
    return kExitUsage;
  }
  if (!tenant.empty() && !serve::IsValidTenant(tenant)) {
    std::fprintf(stderr,
                 "option --tenant wants 1..%zu chars of [A-Za-z0-9_.-]\n",
                 serve::kMaxTenantBytes);
    return kExitUsage;
  }
  std::signal(SIGPIPE, SIG_IGN);  // a vanished server is an error, not a kill
  serve::Request request;
  request.verb = verb;
  request.deadline_ms = static_cast<int64_t>(deadline_ms);
  request.table = table_name;
  request.tenant = tenant;
  if (verb == "check") {
    if (csv_path.empty()) {
      std::fprintf(stderr, "query: a csv file is required for check\n");
      return kExitUsage;
    }
    std::ifstream in(csv_path, std::ios::binary);
    if (!in) {
      return Fail(util::NotFoundError("cannot open " + csv_path));
    }
    std::ostringstream body;
    body << in.rdbuf();
    request.body = body.str();
    if (request.table.empty()) request.table = csv_path;
  }

  // One round trip: connect, frame the request, read + parse the
  // response, print the report. Shed-class failures (exit 7 — server
  // unreachable, mid-frame I/O, or a RESOURCE_EXHAUSTED shed) are the
  // only retryable class below; everything else is final.
  auto attempt = [&]() -> int {
    auto fd = serve::TryConnect(host, static_cast<uint16_t>(port));
    if (!fd.ok()) {
      // "Server refused" is its own exit class: the caller's backoff loop
      // must distinguish an absent/saturated server from a broken request.
      std::fprintf(stderr, "error: %s\n", fd.status().ToString().c_str());
      return kExitShed;
    }
    Status sent = serve::TryWriteFrame(*fd, serve::SerializeRequest(request));
    if (!sent.ok()) {
      ::close(*fd);
      std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
      return kExitShed;
    }
    auto payload = serve::TryReadFrame(*fd, size_t{64} << 20);
    ::close(*fd);
    if (!payload.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   payload.status().ToString().c_str());
      return kExitShed;
    }
    auto response = serve::TryParseResponse(*payload);
    if (!response.ok()) return Fail(response.status());

    std::fprintf(stderr, "query: status=%s",
                 std::string(util::StatusCodeName(response->code)).c_str());
    for (const auto& [k, v] : response->fields) {
      std::fprintf(stderr, " %s=%s", k.c_str(), v.c_str());
    }
    std::fprintf(stderr, "\n");
    std::fwrite(response->body.data(), 1, response->body.size(), g_report);
    if (response->code == StatusCode::kOk) return kExitOk;
    if (response->code == StatusCode::kResourceExhausted) {
      // The reason field splits the RESOURCE_EXHAUSTED class into exit
      // codes with different retry semantics: quota (8) waits for a
      // bucket refill, budget (6) means the request itself is too big
      // and a retry can never help, everything else (shed, draining,
      // circuit_open -> 7) is transient server state worth backing off.
      const std::string_view reason = response->Field("reason");
      if (reason == "quota") {
        std::fprintf(stderr, "query: rejected by tenant quota\n");
        return kExitQuota;
      }
      if (reason == "budget") {
        std::fprintf(stderr, "query: request over its resource budget\n");
        return kExitResource;
      }
      std::fprintf(stderr, "query: request shed by the server\n");
      return kExitShed;
    }
    return ExitCodeFor(Status(response->code, "request failed"));
  };

  // --retries N re-sends only the shed class, with the same deterministic
  // jittered backoff schedule the library uses for transient I/O.
  const util::RetryPolicy policy = CliRetryPolicy(retries);
  int rc = attempt();
  for (size_t retry = 0; rc == kExitShed && retry < retries; ++retry) {
    const int64_t backoff = util::BackoffMicros(
        policy, /*stream=*/1006, static_cast<int>(retry) + 1);
    std::fprintf(stderr,
                 "query: shed, retry %zu/%zu in %lld us\n", retry + 1,
                 retries, static_cast<long long>(backoff));
    util::RealClock().SleepMicros(backoff);
    rc = attempt();
  }
  return rc;
}

int CmdRules(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: autotest rules <rules.sdc>\n");
    return kExitUsage;
  }
  std::string rules_path = argv[0];
  const util::RetryPolicy retry = CliRetryPolicy(3);
  Recipe recipe;
  auto loaded_recipe =
      util::RetryCall(retry, util::RealClock(), /*stream=*/1003,
                      [&] { return TryLoadRecipe(rules_path); });
  if (loaded_recipe.ok()) {
    recipe = *loaded_recipe;
  } else if (loaded_recipe.status().code() != StatusCode::kNotFound) {
    return Fail(loaded_recipe.status());
  }
  auto at = TryTrainFromRecipe(recipe, retry);
  if (!at.ok()) return Fail(at.status());
  size_t unresolved = 0;
  auto rules = util::RetryCall(retry, util::RealClock(), /*stream=*/1004, [&] {
    return core::TryLoadRulesFromFile(rules_path, at->evals(), &unresolved);
  });
  if (!rules.ok()) return Fail(rules.status());
  for (const auto& r : *rules) {
    std::fprintf(g_report, "%s\n", r.Describe().c_str());
  }
  std::fprintf(g_report, "(%zu rules, %zu unresolved)\n", rules->size(),
               unresolved);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global flags before command dispatch.
  bool parallel_stats = false;
  std::string metrics_dump;  // "-" = stdout, else a file path
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel-stats") == 0) {
      parallel_stats = true;
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      autotest::util::Status st =
          autotest::util::FailpointRegistry::Global().Configure(argv[++i]);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return kExitUsage;
      }
    } else if (std::strncmp(argv[i], "--metrics-dump=", 15) == 0) {
      metrics_dump = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0 && i + 1 < argc) {
      metrics_dump = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (metrics_dump == "-") {
    // Keep stdout machine-readable: human report lines move to stderr so
    // `autotest ... --metrics-dump=- | jq` just works.
    g_report = stderr;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: autotest <train|check|rules|serve|query> "
                 "[options] [--parallel-stats] [--failpoints spec] "
                 "[--metrics-dump <path|->]\n"
                 "  train --corpus relational|spreadsheet|tablib "
                 "--columns N --shards N --shard-quorum F "
                 "--max-retries N --out rules.sdc\n"
                 "  check file.csv [more.csv...] [--rules rules.sdc] "
                 "[--max-retries N]\n"
                 "  rules rules.sdc\n"
                 "  serve --rules rules.sdc [--port N] [--max-inflight K] "
                 "[--queue-depth Q] [--default-deadline-ms D] "
                 "[--drain-timeout-ms T] [--tenant-quotas file] "
                 "[--max-request-bytes B] [--max-request-rows R] "
                 "[--max-request-cells C] [--breaker-failures N] "
                 "[--breaker-cooldown-ms D] [--reload-watch] [--once]\n"
                 "  query file.csv --port N [--host H] [--deadline-ms D] "
                 "[--tenant T] [--retries N] [--ping|--metrics|--reload]\n");
    return kExitUsage;
  }
  std::string cmd = argv[1];
  int rc;
  if (cmd == "train") rc = CmdTrain(argc - 2, argv + 2);
  else if (cmd == "check") rc = CmdCheck(argc - 2, argv + 2);
  else if (cmd == "rules") rc = CmdRules(argc - 2, argv + 2);
  else if (cmd == "serve") rc = CmdServe(argc - 2, argv + 2);
  else if (cmd == "query") rc = CmdQuery(argc - 2, argv + 2);
  else {
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    rc = kExitUsage;
  }
  if (parallel_stats) {
    std::fprintf(stderr, "%s\n",
                 autotest::util::parallel::FormatStats().c_str());
  }
  if (!metrics_dump.empty()) {
    // One JSON document per invocation, emitted even when the command
    // failed: a degraded or failing run is exactly the one whose counters
    // matter. A dump failure must not mask the command's own exit code,
    // but a clean run that cannot write its metrics becomes an I/O error.
    std::string json = autotest::metrics::Registry::Global().FormatJson(
        "autotest " + cmd);
    if (metrics_dump == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else {
      std::ofstream out(metrics_dump,
                        std::ios::binary | std::ios::trunc);
      out << json;
      if (!out.flush()) {
        std::fprintf(stderr, "error: cannot write metrics dump to %s\n",
                     metrics_dump.c_str());
        if (rc == kExitOk) rc = kExitIo;
      }
    }
  }
  return rc;
}
