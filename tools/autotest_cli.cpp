// autotest — command-line front end for the Auto-Test library.
//
//   autotest train --corpus relational --columns 2000 --out rules.sdc
//   autotest check data.csv --rules rules.sdc
//   autotest check data.csv                       (trains a quick model)
//   autotest rules rules.sdc
//
// Rule files record the training recipe (corpus profile, sizes, seed) in a
// side header so `check` can rebuild the matching evaluation functions.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/auto_test.h"
#include "core/serialization.h"
#include "datagen/corpus_gen.h"
#include "table/csv.h"
#include "util/parallel/thread_pool.h"

namespace {

using namespace autotest;

struct Recipe {
  std::string corpus = "relational";
  size_t columns = 2000;
  size_t centroids = 120;
  size_t synthetic = 800;
};

std::string RecipePath(const std::string& rules_path) {
  return rules_path + ".recipe";
}

bool SaveRecipe(const Recipe& r, const std::string& rules_path) {
  std::ofstream out(RecipePath(rules_path));
  if (!out) return false;
  out << r.corpus << " " << r.columns << " " << r.centroids << " "
      << r.synthetic << "\n";
  return static_cast<bool>(out);
}

std::optional<Recipe> LoadRecipe(const std::string& rules_path) {
  std::ifstream in(RecipePath(rules_path));
  if (!in) return std::nullopt;
  Recipe r;
  if (!(in >> r.corpus >> r.columns >> r.centroids >> r.synthetic)) {
    return std::nullopt;
  }
  return r;
}

table::Corpus BuildCorpus(const Recipe& r) {
  if (r.corpus == "spreadsheet") {
    return datagen::GenerateCorpus(
        datagen::SpreadsheetTablesProfile(r.columns));
  }
  if (r.corpus == "tablib") {
    return datagen::GenerateCorpus(datagen::TablibProfile(r.columns));
  }
  return datagen::GenerateCorpus(datagen::RelationalTablesProfile(r.columns));
}

core::AutoTest TrainFromRecipe(const Recipe& r) {
  std::fprintf(stderr, "training on %s corpus (%zu columns)...\n",
               r.corpus.c_str(), r.columns);
  core::AutoTestConfig config;
  config.eval_options.embedding_centroids_per_model = r.centroids;
  config.train_options.synthetic_count = r.synthetic;
  return core::AutoTest::Train(BuildCorpus(r), config);
}

int CmdTrain(int argc, char** argv) {
  Recipe recipe;
  std::string out_path = "rules.sdc";
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--corpus") recipe.corpus = next();
    else if (a == "--columns") recipe.columns = std::stoul(next());
    else if (a == "--centroids") recipe.centroids = std::stoul(next());
    else if (a == "--synthetic") recipe.synthetic = std::stoul(next());
    else if (a == "--out") out_path = next();
  }
  core::AutoTest at = TrainFromRecipe(recipe);
  auto sel = at.Select(core::Variant::kFineSelect);
  std::vector<core::Sdc> rules;
  for (size_t i : sel.selected) rules.push_back(at.model().constraints[i]);
  if (!core::SaveRulesToFile(rules, out_path) ||
      !SaveRecipe(recipe, out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("learned %zu constraints, distilled %zu rules -> %s\n",
              at.model().constraints.size(), rules.size(), out_path.c_str());
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: autotest check <file.csv> [--rules f]\n");
    return 1;
  }
  std::string csv_path = argv[0];
  std::string rules_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rules") == 0 && i + 1 < argc) {
      rules_path = argv[++i];
    }
  }
  auto table_opt = table::ReadCsvFile(csv_path);
  if (!table_opt) {
    std::fprintf(stderr, "cannot read %s\n", csv_path.c_str());
    return 1;
  }

  Recipe recipe;
  std::vector<core::Sdc> rules;
  core::AutoTest at = [&]() {
    if (!rules_path.empty()) {
      if (auto r = LoadRecipe(rules_path)) recipe = *r;
    } else {
      recipe.columns = 1500;  // quick in-process training
    }
    return TrainFromRecipe(recipe);
  }();
  if (!rules_path.empty()) {
    size_t unresolved = 0;
    auto loaded =
        core::LoadRulesFromFile(rules_path, at.evals(), &unresolved);
    if (!loaded) {
      std::fprintf(stderr, "cannot load rules from %s\n",
                   rules_path.c_str());
      return 1;
    }
    if (unresolved > 0) {
      std::fprintf(stderr, "warning: %zu rules reference unknown "
                   "evaluation functions and were skipped\n", unresolved);
    }
    rules = std::move(*loaded);
  } else {
    auto sel = at.Select(core::Variant::kFineSelect);
    for (size_t i : sel.selected) rules.push_back(at.model().constraints[i]);
  }
  core::SdcPredictor predictor(std::move(rules));
  std::printf("checking %s with %zu rules\n", csv_path.c_str(),
              predictor.num_rules());

  size_t total = 0;
  for (const auto& column : table_opt->columns) {
    if (table::IsMostlyNumeric(column)) continue;
    for (const auto& d : predictor.Predict(column)) {
      ++total;
      std::printf("%s:%zu  \"%s\"  conf=%.2f\n    %s\n",
                  column.name.c_str(), d.row + 2, d.value.c_str(),
                  d.confidence, d.explanation.c_str());
    }
  }
  std::printf("%zu potential error(s) found\n", total);
  return 0;
}

int CmdRules(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: autotest rules <rules.sdc>\n");
    return 1;
  }
  std::string rules_path = argv[0];
  Recipe recipe;
  if (auto r = LoadRecipe(rules_path)) recipe = *r;
  core::AutoTest at = TrainFromRecipe(recipe);
  size_t unresolved = 0;
  auto rules = core::LoadRulesFromFile(rules_path, at.evals(), &unresolved);
  if (!rules) {
    std::fprintf(stderr, "cannot load %s\n", rules_path.c_str());
    return 1;
  }
  for (const auto& r : *rules) {
    std::printf("%s\n", r.Describe().c_str());
  }
  std::printf("(%zu rules, %zu unresolved)\n", rules->size(), unresolved);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --parallel-stats flag before command dispatch.
  bool parallel_stats = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel-stats") == 0) {
      parallel_stats = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: autotest <train|check|rules> [options] "
                 "[--parallel-stats]\n"
                 "  train --corpus relational|spreadsheet|tablib "
                 "--columns N --out rules.sdc\n"
                 "  check file.csv [--rules rules.sdc]\n"
                 "  rules rules.sdc\n");
    return 1;
  }
  std::string cmd = argv[1];
  int rc = 1;
  if (cmd == "train") rc = CmdTrain(argc - 2, argv + 2);
  else if (cmd == "check") rc = CmdCheck(argc - 2, argv + 2);
  else if (cmd == "rules") rc = CmdRules(argc - 2, argv + 2);
  else std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  if (parallel_stats) {
    std::fprintf(stderr, "%s\n", util::parallel::FormatStats().c_str());
  }
  return rc;
}
