// autotest — command-line front end for the Auto-Test library.
//
//   autotest train --corpus relational --columns 2000 --out rules.sdc
//   autotest check data.csv --rules rules.sdc
//   autotest check data.csv                       (trains a quick model)
//   autotest rules rules.sdc
//
// Rule files record the training recipe (corpus profile, sizes, seed) in a
// side header so `check` can rebuild the matching evaluation functions.
//
// Exit codes (one per failure class, so scripts can branch on the kind of
// failure rather than scraping stderr):
//   0  success
//   1  internal error
//   2  usage error (bad command line)
//   3  invalid input (malformed/invalid CSV, rule file or recipe)
//   4  missing file (CSV, rules or recipe not found)
//   5  I/O failure (read/write/rename failed, injected I/O faults)
//   6  resource exhausted (input over limits, injected allocation faults)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/auto_test.h"
#include "core/serialization.h"
#include "datagen/corpus_gen.h"
#include "table/csv.h"
#include "util/failpoint.h"
#include "util/parallel/thread_pool.h"
#include "util/status.h"

namespace {

using namespace autotest;
using util::Result;
using util::Status;
using util::StatusCode;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInvalidInput = 3;
constexpr int kExitNotFound = 4;
constexpr int kExitIo = 5;
constexpr int kExitResource = 6;

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kDataLoss:
      return kExitInvalidInput;
    case StatusCode::kNotFound:
      return kExitNotFound;
    case StatusCode::kIoError:
      return kExitIo;
    case StatusCode::kResourceExhausted:
      return kExitResource;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

// Prints the structured diagnostic and maps it to the exit code.
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

struct Recipe {
  std::string corpus = "relational";
  size_t columns = 2000;
  size_t centroids = 120;
  size_t synthetic = 800;
};

bool IsKnownCorpus(const std::string& name) {
  return name == "relational" || name == "spreadsheet" || name == "tablib";
}

std::string RecipePath(const std::string& rules_path) {
  return rules_path + ".recipe";
}

[[nodiscard]] Status ValidateRecipe(const Recipe& r,
                                    const std::string& source) {
  if (!IsKnownCorpus(r.corpus)) {
    return util::InvalidArgumentError(
        source + ": field 'corpus' must be relational, spreadsheet or "
        "tablib, got '" + r.corpus + "'");
  }
  if (r.columns == 0) {
    return util::InvalidArgumentError(source +
                                      ": field 'columns' must be positive");
  }
  if (r.centroids == 0) {
    return util::InvalidArgumentError(
        source + ": field 'centroids' must be positive");
  }
  return Status::Ok();
}

// Atomic like TrySaveRulesToFile: temp file + rename, so an interrupted
// train never leaves a torn recipe next to a valid rules file.
[[nodiscard]] Status TrySaveRecipe(const Recipe& r,
                                   const std::string& rules_path) {
  if (util::FailpointFires(util::kFpRecipeSave)) {
    return util::InjectedFault(StatusCode::kIoError, util::kFpRecipeSave)
        .WithContext("saving recipe for " + rules_path);
  }
  const std::string path = RecipePath(rules_path);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return util::IoError("cannot open temp file " + tmp);
    out << r.corpus << " " << r.columns << " " << r.centroids << " "
        << r.synthetic << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return util::IoError("write failure on temp file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

[[nodiscard]] Result<Recipe> TryLoadRecipe(const std::string& rules_path) {
  const std::string path = RecipePath(rules_path);
  if (util::FailpointFires(util::kFpRecipeLoad)) {
    return util::InjectedFault(StatusCode::kIoError, util::kFpRecipeLoad)
        .WithContext("loading recipe " + path);
  }
  std::ifstream in(path);
  if (!in) return util::NotFoundError("cannot open recipe " + path);
  Recipe r;
  if (!(in >> r.corpus >> r.columns >> r.centroids >> r.synthetic)) {
    return util::DataLossError(
        "recipe " + path +
        " is malformed (want: <corpus> <columns> <centroids> <synthetic>)");
  }
  AT_RETURN_IF_ERROR(ValidateRecipe(r, "recipe " + path));
  return r;
}

table::Corpus BuildCorpus(const Recipe& r) {
  if (r.corpus == "spreadsheet") {
    return datagen::GenerateCorpus(
        datagen::SpreadsheetTablesProfile(r.columns));
  }
  if (r.corpus == "tablib") {
    return datagen::GenerateCorpus(datagen::TablibProfile(r.columns));
  }
  return datagen::GenerateCorpus(datagen::RelationalTablesProfile(r.columns));
}

[[nodiscard]] Result<core::AutoTest> TryTrainFromRecipe(const Recipe& r) {
  std::fprintf(stderr, "training on %s corpus (%zu columns)...\n",
               r.corpus.c_str(), r.columns);
  core::AutoTestConfig config;
  config.eval_options.embedding_centroids_per_model = r.centroids;
  config.train_options.synthetic_count = r.synthetic;
  core::AutoTest at = core::AutoTest::Train(BuildCorpus(r), config);
  size_t skipped = at.model().evals_skipped;
  if (skipped > 0) {
    size_t total = at.evals().size();
    if (skipped == total) {
      return util::ResourceExhaustedError(
          "all " + std::to_string(total) +
          " evaluation families failed during training");
    }
    std::fprintf(stderr,
                 "warning: %zu/%zu evaluation families skipped under "
                 "injected faults; training degraded\n",
                 skipped, total);
  }
  return at;
}

// Exception-free size parse; the CLI must not terminate on `--columns xyz`.
bool ParseSize(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  char* endp = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &endp, 10);
  if (endp != s.c_str() + s.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

int CmdTrain(int argc, char** argv) {
  Recipe recipe;
  std::string out_path = "rules.sdc";
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() { return std::string(i + 1 < argc ? argv[++i] : ""); };
    bool ok = true;
    if (a == "--corpus") recipe.corpus = next();
    else if (a == "--columns") ok = ParseSize(next(), &recipe.columns);
    else if (a == "--centroids") ok = ParseSize(next(), &recipe.centroids);
    else if (a == "--synthetic") ok = ParseSize(next(), &recipe.synthetic);
    else if (a == "--out") out_path = next();
    else {
      std::fprintf(stderr, "unknown train option %s\n", a.c_str());
      return kExitUsage;
    }
    if (!ok) {
      std::fprintf(stderr, "option %s wants a non-negative integer\n",
                   a.c_str());
      return kExitUsage;
    }
  }
  Status valid = ValidateRecipe(recipe, "command line");
  if (!valid.ok()) return Fail(valid);
  auto at = TryTrainFromRecipe(recipe);
  if (!at.ok()) return Fail(at.status());
  auto sel = at->Select(core::Variant::kFineSelect);
  std::vector<core::Sdc> rules;
  for (size_t i : sel.selected) rules.push_back(at->model().constraints[i]);
  Status saved = core::TrySaveRulesToFile(rules, out_path);
  if (!saved.ok()) return Fail(saved);
  saved = TrySaveRecipe(recipe, out_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("learned %zu constraints, distilled %zu rules -> %s\n",
              at->model().constraints.size(), rules.size(),
              out_path.c_str());
  return kExitOk;
}

int CmdCheck(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: autotest check <file.csv> [--rules f]\n");
    return kExitUsage;
  }
  std::string csv_path = argv[0];
  std::string rules_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rules") == 0 && i + 1 < argc) {
      rules_path = argv[++i];
    }
  }
  auto table = table::TryReadCsvFile(csv_path);
  if (!table.ok()) return Fail(table.status());

  Recipe recipe;
  if (!rules_path.empty()) {
    auto loaded_recipe = TryLoadRecipe(rules_path);
    if (loaded_recipe.ok()) {
      recipe = *loaded_recipe;
    } else if (loaded_recipe.status().code() != StatusCode::kNotFound) {
      // A missing recipe falls back to the default; a corrupt or
      // unreadable one is a hard error (it would rebuild the wrong
      // evaluation functions and silently unresolve every rule).
      return Fail(loaded_recipe.status());
    }
  } else {
    recipe.columns = 1500;  // quick in-process training
  }
  auto at = TryTrainFromRecipe(recipe);
  if (!at.ok()) return Fail(at.status());

  std::vector<core::Sdc> rules;
  if (!rules_path.empty()) {
    size_t unresolved = 0;
    auto loaded =
        core::TryLoadRulesFromFile(rules_path, at->evals(), &unresolved);
    if (!loaded.ok()) return Fail(loaded.status());
    if (unresolved > 0) {
      std::fprintf(stderr, "warning: %zu rules reference unknown "
                   "evaluation functions and were skipped\n", unresolved);
    }
    rules = std::move(*loaded);
  } else {
    auto sel = at->Select(core::Variant::kFineSelect);
    for (size_t i : sel.selected) {
      rules.push_back(at->model().constraints[i]);
    }
  }
  core::SdcPredictor predictor(std::move(rules));
  if (predictor.skipped_rules() > 0) {
    std::fprintf(stderr,
                 "warning: %zu invalid/unresolved rules dropped by the "
                 "predictor\n",
                 predictor.skipped_rules());
  }
  std::printf("checking %s with %zu rules\n", csv_path.c_str(),
              predictor.num_rules());

  size_t total = 0;
  size_t columns_skipped = 0;
  for (const auto& column : table->columns) {
    if (table::IsMostlyNumeric(column)) continue;
    auto detections = predictor.TryPredict(column);
    if (!detections.ok()) {
      // Column-level degradation: report, count, move on — one poisoned
      // column must not take down the whole check.
      std::fprintf(stderr, "warning: skipping column '%s': %s\n",
                   column.name.c_str(),
                   detections.status().ToString().c_str());
      ++columns_skipped;
      continue;
    }
    for (const auto& d : *detections) {
      ++total;
      std::printf("%s:%zu  \"%s\"  conf=%.2f\n    %s\n",
                  column.name.c_str(), d.row + 2, d.value.c_str(),
                  d.confidence, d.explanation.c_str());
    }
  }
  if (columns_skipped > 0) {
    std::fprintf(stderr, "warning: %zu column(s) skipped under faults\n",
                 columns_skipped);
  }
  std::printf("%zu potential error(s) found\n", total);
  return kExitOk;
}

int CmdRules(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: autotest rules <rules.sdc>\n");
    return kExitUsage;
  }
  std::string rules_path = argv[0];
  Recipe recipe;
  auto loaded_recipe = TryLoadRecipe(rules_path);
  if (loaded_recipe.ok()) {
    recipe = *loaded_recipe;
  } else if (loaded_recipe.status().code() != StatusCode::kNotFound) {
    return Fail(loaded_recipe.status());
  }
  auto at = TryTrainFromRecipe(recipe);
  if (!at.ok()) return Fail(at.status());
  size_t unresolved = 0;
  auto rules =
      core::TryLoadRulesFromFile(rules_path, at->evals(), &unresolved);
  if (!rules.ok()) return Fail(rules.status());
  for (const auto& r : *rules) {
    std::printf("%s\n", r.Describe().c_str());
  }
  std::printf("(%zu rules, %zu unresolved)\n", rules->size(), unresolved);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global flags before command dispatch.
  bool parallel_stats = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel-stats") == 0) {
      parallel_stats = true;
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      autotest::util::Status st =
          autotest::util::FailpointRegistry::Global().Configure(argv[++i]);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return kExitUsage;
      }
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: autotest <train|check|rules> [options] "
                 "[--parallel-stats] [--failpoints spec]\n"
                 "  train --corpus relational|spreadsheet|tablib "
                 "--columns N --out rules.sdc\n"
                 "  check file.csv [--rules rules.sdc]\n"
                 "  rules rules.sdc\n");
    return kExitUsage;
  }
  std::string cmd = argv[1];
  int rc;
  if (cmd == "train") rc = CmdTrain(argc - 2, argv + 2);
  else if (cmd == "check") rc = CmdCheck(argc - 2, argv + 2);
  else if (cmd == "rules") rc = CmdRules(argc - 2, argv + 2);
  else {
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    rc = kExitUsage;
  }
  if (parallel_stats) {
    std::fprintf(stderr, "%s\n",
                 autotest::util::parallel::FormatStats().c_str());
  }
  return rc;
}
