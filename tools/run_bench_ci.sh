#!/usr/bin/env bash
# Pinned fast bench subset for the CI regression gate.
#
# Runs bench_fig14_training_time, bench_fig12_latency (SDC variants only)
# and bench_micro_google at a small pinned scale, merges their outputs
# into one autotest.metrics.v1 document (BENCH_ci.json), and compares the
# time-valued gauges against the checked-in bench/baseline.json: every
# baseline metric must be present and must not exceed baseline * threshold
# (default 1.25, i.e. a >25% regression fails). A delta table is printed
# either way.
#
# In addition to the baseline comparison, bench/floors.json (if present)
# pins absolute CEILINGS for headline metrics: each floored metric must
# stay at or below its ceiling. The baseline moves every time it is
# re-pinned, so on its own it cannot prevent an accepted optimisation from
# slowly eroding across re-pins; a floor is only ever lowered deliberately
# and locks the improvement in (e.g. the >=2x columnar candidate-gen win,
# DESIGN.md §4k).
#
# Usage: tools/run_bench_ci.sh [build-dir]
# Env:
#   OUT                            output document (default BENCH_ci.json)
#   BASELINE                       baseline doc (default bench/baseline.json;
#                                  "none" skips the comparison)
#   FLOORS                         improvement-floor doc (default
#                                  bench/floors.json; "none" skips it)
#   DELTA_OUT                      delta table copy for CI artifact upload
#                                  (default BENCH_delta.txt)
#   AT_BENCH_REGRESSION_THRESHOLD  regression factor (default 1.25)
#   AT_BENCH_SCALE                 bench scale (default 0.125, the CI pin)
#   AT_BENCH_RUNS                  process runs per binary (default 3); the
#                                  merge keeps the per-metric minimum
#
# Re-pinning after an accepted perf change: run with BASELINE=none on a
# quiet machine, then copy the gated metrics (bench.fig14.*, bench.fig12.*
# and the bench.micro.*_rel relative scores — NOT the *_ns absolutes) from
# BENCH_ci.json into bench/baseline.json, keeping names sorted. If the
# change was an accepted speedup of a floored metric, lower its ceiling in
# bench/floors.json in the same commit.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
OUT=${OUT:-BENCH_ci.json}
BASELINE=${BASELINE:-bench/baseline.json}
FLOORS=${FLOORS:-bench/floors.json}
DELTA_OUT=${DELTA_OUT:-BENCH_delta.txt}
THRESHOLD=${AT_BENCH_REGRESSION_THRESHOLD:-1.25}
SCALE=${AT_BENCH_SCALE:-0.125}
RUNS=${AT_BENCH_RUNS:-3}

for bin in bench_fig14_training_time bench_fig12_latency bench_micro_google; do
  if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
    echo "error: $BUILD_DIR/bench/$bin not built" >&2
    exit 2
  fi
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Each binary runs AT_BENCH_RUNS times and the merge keeps the per-metric
# minimum: within-process repetitions share CPU-frequency / container state,
# so independent process runs are what actually kills run-to-run noise on
# shared CI runners.
for run in $(seq 1 "$RUNS"); do
  echo "[bench-ci] run $run/$RUNS: bench_fig14_training_time" \
    "(AT_BENCH_SCALE=$SCALE)"
  AT_BENCH_SCALE=$SCALE AT_BENCH_JSON="$tmpdir/fig14.$run.json" \
    "$BUILD_DIR/bench/bench_fig14_training_time" >"$tmpdir/fig14.$run.txt"

  echo "[bench-ci] run $run/$RUNS: bench_fig12_latency" \
    "(AT_BENCH_SCALE=$SCALE, SDC only)"
  AT_BENCH_SCALE=$SCALE AT_BENCH_SDC_ONLY=1 \
    AT_BENCH_JSON="$tmpdir/fig12.$run.json" \
    "$BUILD_DIR/bench/bench_fig12_latency" >"$tmpdir/fig12.$run.txt"

  echo "[bench-ci] run $run/$RUNS: bench_micro_google"
  # Median of 5 repetitions: single passes of the nanosecond-scale benches
  # are too noisy for a 25% gate.
  "$BUILD_DIR/bench/bench_micro_google" \
    --benchmark_out="$tmpdir/micro.$run.json" --benchmark_out_format=json \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    >"$tmpdir/micro.$run.txt" 2>"$tmpdir/micro.$run.err" ||
    {
      cat "$tmpdir/micro.$run.err" >&2
      exit 2
    }
done

python3 - "$tmpdir" "$OUT" "$BASELINE" "$THRESHOLD" "$RUNS" "$FLOORS" \
  "$DELTA_OUT" <<'PY'
import json
import math
import os
import re
import sys

tmpdir, out_path, baseline_path, threshold, runs, floors_path, delta_path = \
    sys.argv[1:8]
threshold = float(threshold)
runs = int(runs)

# Per-metric minimum across the process runs (see the loop above).
best = {}


def record(name, value):
    if name not in best or value < best[name]:
        best[name] = value


for run in range(1, runs + 1):
    # fig14 + fig12 already emit autotest.metrics.v1 via
    # benchx::BenchMetrics.
    for name in ("fig14", "fig12"):
        with open(f"{tmpdir}/{name}.{run}.json") as f:
            doc = json.load(f)
        assert doc["schema"] == "autotest.metrics.v1", doc["schema"]
        for m in doc["metrics"]:
            record(m["name"], m["value"])

    # bench_micro_google emits google-benchmark JSON; fold every
    # benchmark's median-of-repetitions real_time into a nanosecond gauge
    # under bench.micro.*. The *_ns gauges are informational; the gate pins
    # the *_rel gauges — each bench normalized by the geometric mean of all
    # micro benches in the same process run — because nanosecond-scale
    # absolute times swing >25% with machine-wide CPU-frequency noise that
    # hits all benches together. A bench regressing relative to its peers
    # still moves its *_rel score; uniform slowdowns are caught by the
    # absolute seconds-scale fig12/fig14 gauges.
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    with open(f"{tmpdir}/micro.{run}.json") as f:
        micro = json.load(f)
    med = {}
    for b in micro["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        base_name = b.get("run_name", b["name"])
        slug = re.sub(r"[^a-z0-9_]+", "_", base_name.lower()).strip("_")
        med[slug] = b["real_time"] * unit_ns[b["time_unit"]]
    geomean = math.exp(sum(math.log(v) for v in med.values()) / len(med))
    for slug, ns in med.items():
        record(f"bench.micro.{slug}_ns", ns)
        record(f"bench.micro.{slug}_rel", ns / geomean)

metrics = [{"name": name, "kind": "gauge", "value": value}
           for name, value in sorted(best.items())]
doc = {"schema": "autotest.metrics.v1", "source": "run_bench_ci",
       "metrics": metrics}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"[bench-ci] wrote {out_path} ({len(metrics)} metrics)")

current = {m["name"]: m for m in metrics}
failures = []
rows = []

if baseline_path == "none":
    print("[bench-ci] BASELINE=none, skipping regression comparison")
else:
    with open(baseline_path) as f:
        base_doc = json.load(f)
    assert base_doc["schema"] == "autotest.metrics.v1", base_doc["schema"]
    # The baseline is the allowlist: every metric it pins must exist in
    # the current run and stay under baseline * threshold.
    for bm in base_doc["metrics"]:
        name, base = bm["name"], float(bm["value"])
        cm = current.get(name)
        if cm is None:
            failures.append(f"{name}: missing from current run")
            rows.append((name, base, None, None, "MISSING"))
            continue
        cur = float(cm["value"])
        delta = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
        regressed = base > 0 and cur > base * threshold
        if regressed:
            failures.append(f"{name}: {cur:.6g} vs baseline {base:.6g} "
                            f"(+{delta:.1f}% > {(threshold - 1) * 100:.0f}%)")
        rows.append((name, base, cur, delta,
                     "REGRESSED" if regressed else "ok"))

# Improvement floors: absolute ceilings, checked with NO threshold slack —
# the noise margin is baked into the ceiling when it is pinned. A floored
# metric drifting above its ceiling fails even when the (re-pinnable)
# baseline comparison is green.
if floors_path != "none" and os.path.exists(floors_path):
    with open(floors_path) as f:
        floors_doc = json.load(f)
    assert floors_doc["schema"] == "autotest.metrics.v1", floors_doc["schema"]
    for fm in floors_doc["metrics"]:
        name, ceiling = fm["name"], float(fm["value"])
        label = name + " <=ceil"
        cm = current.get(name)
        if cm is None:
            failures.append(f"{name}: floored metric missing from current run")
            rows.append((label, ceiling, None, None, "MISSING"))
            continue
        cur = float(cm["value"])
        delta = (cur / ceiling - 1.0) * 100.0 if ceiling > 0 else 0.0
        over = cur > ceiling
        if over:
            failures.append(f"{name}: {cur:.6g} exceeds improvement-floor "
                            f"ceiling {ceiling:.6g}")
        rows.append((label, ceiling, cur, delta,
                     "ABOVE-CEILING" if over else "ok"))

width = max(len(r[0]) for r in rows) if rows else 10
table = [f"{'metric':<{width}} {'baseline':>12} {'current':>12} "
         f"{'delta':>8}  verdict"]
for name, base, cur, delta, verdict in rows:
    cur_s = f"{cur:.6g}" if cur is not None else "-"
    delta_s = f"{delta:+.1f}%" if delta is not None else "-"
    table.append(f"{name:<{width}} {base:>12.6g} {cur_s:>12} "
                 f"{delta_s:>8}  {verdict}")
for line in table:
    print(f"[bench-ci] {line}")
# Copy of the delta table for the CI job artifact.
with open(delta_path, "w") as f:
    f.write("\n".join(table) + "\n")
print(f"[bench-ci] wrote delta table to {delta_path}")

if failures:
    print(f"[bench-ci] FAIL: {len(failures)} gate violation(s) "
          f"(threshold {threshold}x vs {baseline_path}; "
          f"ceilings from {floors_path})")
    sys.exit(1)
print(f"[bench-ci] OK: {len(rows)} gated metric(s) green")
PY
