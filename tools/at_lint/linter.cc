#include "at_lint/linter.h"

#include <algorithm>
#include <deque>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "at_lint/decl_model.h"

namespace autotest::lint {

namespace fs = std::filesystem;

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// True if `token` occurs in `line` starting at a non-identifier boundary
/// (the char before, if any, is not part of an identifier).
bool ContainsToken(std::string_view line, std::string_view token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    if (pos == 0 || !IsIdentChar(line[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

/// `<component>.<operation>`, lower-case — the failpoint naming scheme.
bool IsFailpointShaped(std::string_view s) {
  size_t dot = s.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == s.size()) {
    return false;
  }
  if (s.find('.', dot + 1) != std::string_view::npos) return false;
  auto lower_ident = [](std::string_view part) {
    if (!std::islower(static_cast<unsigned char>(part.front()))) return false;
    for (char c : part) {
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    return true;
  };
  return lower_ident(s.substr(0, dot)) && lower_ident(s.substr(dot + 1));
}

/// Normalizes path separators so scope checks work on any input spelling.
std::string NormalizedPath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---------------------------------------------------------------------------
// Preprocessing: comment stripping, literal extraction, suppressions.
// ---------------------------------------------------------------------------

/// Builds the code view (comments removed, literal bodies blanked) and the
/// per-line literal list from raw text. Line structure is preserved.
void StripAndCollect(const std::vector<std::string>& raw,
                     std::vector<std::string>* code,
                     std::vector<std::vector<std::string>>* literals) {
  enum class State { kNormal, kLineComment, kBlockComment, kString, kChar };
  State state = State::kNormal;
  std::string current_literal;

  code->assign(raw.size(), std::string());
  literals->assign(raw.size(), {});
  for (size_t li = 0; li < raw.size(); ++li) {
    const std::string& in = raw[li];
    std::string& out = (*code)[li];
    out.reserve(in.size());
    if (state == State::kLineComment) state = State::kNormal;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kNormal:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = in.size();  // rest of the line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kString;
            current_literal.clear();
            out += '"';
          } else if (c == '\'') {
            state = State::kChar;
            out += '\'';
          } else {
            out += c;
          }
          break;
        case State::kLineComment:
          i = in.size();
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kNormal;
            out += "  ";
            ++i;
          } else {
            out += ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < in.size()) {
            current_literal += c;
            current_literal += next;
            out += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kNormal;
            (*literals)[li].push_back(current_literal);
            out += '"';
          } else {
            current_literal += c;
            out += ' ';
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < in.size()) {
            out += "  ";
            ++i;
          } else if (c == '\'') {
            state = State::kNormal;
            out += '\'';
          } else {
            out += ' ';
          }
          break;
      }
    }
    // An unterminated string at end-of-line: adjacent-line literals are not
    // a thing in this codebase; close it to stay line-oriented.
    if (state == State::kString) {
      (*literals)[li].push_back(current_literal);
      state = State::kNormal;
    }
    if (state == State::kChar) state = State::kNormal;
  }
}

/// Per-file suppression state parsed from `at_lint:` comments. Each tag
/// remembers whether it ever covered a would-be violation, so the
/// --audit-suppressions pass can report the stale ones.
struct Suppressions {
  struct Tag {
    size_t line = 0;        // 1-based line of the tag comment
    std::string rule;
    bool whole_file = false;
    /// Set by Covers when the tag excuses a would-be violation. Mutable
    /// because coverage is observed through the const rule interface.
    mutable bool used = false;
  };
  std::vector<Tag> tags;

  /// True when a tag suppresses the given (line, rule); a line-level tag
  /// covers its own line and the one after it, so the comment can sit
  /// above the offending statement. Marks every covering tag as used.
  bool Covers(size_t line, const std::string& rule) const {
    bool hit = false;
    for (const Tag& t : tags) {
      if (t.rule != rule) continue;
      if (t.whole_file || t.line == line || t.line + 1 == line) {
        t.used = true;
        hit = true;
      }
    }
    return hit;
  }
};

/// `R` + digits — rejects the `disable(...)` placeholder spelling that
/// prose documentation uses.
bool IsRuleName(std::string_view rule) {
  if (rule.size() < 2 || rule[0] != 'R') return false;
  for (char c : rule.substr(1)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void ParseRuleList(std::string_view text, size_t line, bool whole_file,
                   Suppressions* out) {
  size_t close = text.find(')');
  if (close == std::string_view::npos) return;
  std::string_view inside = text.substr(0, close);
  size_t start = 0;
  while (start <= inside.size()) {
    size_t comma = inside.find(',', start);
    size_t end = comma == std::string_view::npos ? inside.size() : comma;
    std::string rule(TrimView(inside.substr(start, end - start)));
    if (IsRuleName(rule)) out->tags.push_back({line, rule, whole_file});
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
}

Suppressions ParseSuppressions(const SourceFile& file) {
  constexpr std::string_view kLineTag = "at_lint: disable(";
  constexpr std::string_view kFileTag = "at_lint: disable-file(";
  Suppressions out;
  // A real suppression directly follows its `//` comment opener. That
  // anchors out the documentation spellings: tag text inside string
  // literals (the linter's own constants, usage text in main.cc) and
  // `//   // at_lint: ...` example lines in header comments. The comment
  // opener's column is exactly the stripped code view's length — the
  // stripper drops a line comment from that point on.
  auto at_comment_start = [](const std::string& raw_line,
                             const std::string& code_line, size_t pos) {
    size_t c = code_line.size();
    if (pos < c + 2 || raw_line.compare(c, 2, "//") != 0) return false;
    for (size_t i = c + 2; i < pos; ++i) {
      if (raw_line[i] != ' ' && raw_line[i] != '\t') return false;
    }
    return true;
  };
  for (size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    bool in_literal = false;
    for (const std::string& lit : file.literals[li]) {
      if (lit.find("at_lint:") != std::string::npos) in_literal = true;
    }
    if (in_literal) continue;
    size_t pos = line.find(kFileTag);
    if (pos != std::string::npos &&
        at_comment_start(line, file.code[li], pos)) {
      ParseRuleList(std::string_view(line).substr(pos + kFileTag.size()),
                    li + 1, /*whole_file=*/true, &out);
      continue;
    }
    pos = line.find(kLineTag);
    if (pos != std::string::npos &&
        at_comment_start(line, file.code[li], pos)) {
      ParseRuleList(std::string_view(line).substr(pos + kLineTag.size()),
                    li + 1, /*whole_file=*/false, &out);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule R1 — discarded Status / Result<T> values.
// ---------------------------------------------------------------------------

/// True if the called function name propagates the Status contract: the
/// Try* naming convention plus the registry's Configure.
bool IsStatusReturningName(std::string_view name) {
  if (name == "Configure") return true;
  return name.size() > 3 && name.substr(0, 3) == "Try" &&
         std::isupper(static_cast<unsigned char>(name[3]));
}

/// Analyses one full statement (joined across lines, comments stripped,
/// literals blanked). Returns the name of the final call in a plain
/// expression chain (`a::b().TryFoo(args);`) when the chain is the whole
/// statement — i.e. the value of that call is discarded. Empty when the
/// statement is anything else: a declaration (two adjacent identifiers),
/// an assignment, a return, a cast, a control-flow keyword.
std::string DiscardedCallName(std::string_view stmt) {
  size_t i = 0;
  std::string last_call;
  bool prev_was_ident = false;
  while (i < stmt.size()) {
    char c = stmt[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < stmt.size() && IsIdentChar(stmt[i])) ++i;
      std::string_view word = stmt.substr(start, i - start);
      if (i < stmt.size() && stmt[i] == '(') {
        if (prev_was_ident) return "";  // `Type name(...)` — a declaration
        // A call: skip its balanced argument list and carry on with
        // whatever is chained after it.
        int depth = 0;
        while (i < stmt.size()) {
          if (stmt[i] == '(') ++depth;
          if (stmt[i] == ')' && --depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
        if (depth != 0) return "";  // unbalanced (macro soup) — bail
        last_call = std::string(word);
        prev_was_ident = false;
        continue;
      }
      if (prev_was_ident) return "";  // `Type name` — a declaration
      prev_was_ident = true;
      continue;
    }
    if (c == ':' && i + 1 < stmt.size() && stmt[i + 1] == ':') {
      i += 2;
      prev_was_ident = false;
      continue;
    }
    if (c == '.' ||
        (c == '-' && i + 1 < stmt.size() && stmt[i + 1] == '>')) {
      i += c == '.' ? 1 : 2;
      prev_was_ident = false;
      continue;
    }
    if (c == ';') return last_call;  // end of the bare expression chain
    return "";  // '=', '<', '(', keywords with operators... — value used
  }
  return "";
}

/// Finds violations of the form `expr.TryFoo(args);` / `TryFoo(args);`
/// where the returned value is not consumed. A statement starts on a line
/// whose previous meaningful code char is one of `;{}:` (or the file
/// begins there) and is joined across lines up to its terminating `;`.
void CheckR1(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  char prev_meaningful = ';';  // file start behaves like a statement start
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::string_view trimmed = TrimView(file.code[li]);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') continue;  // preprocessor: neither code nor end
    char statement_opener = prev_meaningful;
    prev_meaningful = trimmed.back();
    if (statement_opener != ';' && statement_opener != '{' &&
        statement_opener != '}' && statement_opener != ':') {
      continue;  // mid-statement continuation line
    }
    // Join the statement across lines, up to the ';' that ends it. A '{'
    // ends the join too: the "statement" was really a control-flow or
    // definition header, and the lines after its brace are fresh
    // statements of the new block, not continuations.
    std::string stmt(trimmed);
    size_t lj = li;
    while (stmt.find(';') == std::string::npos &&
           stmt.find('{') == std::string::npos &&
           lj + 1 < file.code.size() && lj - li < 40) {
      ++lj;
      stmt += ' ';
      stmt += TrimView(file.code[lj]);
    }
    std::string call = DiscardedCallName(stmt);
    if (!call.empty() && IsStatusReturningName(call) &&
        !supp.Covers(li + 1, "R1")) {
      // Reported at the statement's first physical line, not wherever the
      // call token landed after wrapping.
      out->push_back({file.path, li + 1, "R1",
                      "result of '" + call +
                          "(...)' is discarded; Status/Result<T> carry "
                          "the diagnostic — consume it or cast to (void) "
                          "with a reason"});
    }
    if (lj != li) {
      // The joined lines belong to this statement: skip them so a
      // continuation line can never be re-detected as a fresh statement
      // start (a `:` or `;` inside the statement — ternary splits,
      // for-loop headers — used to re-trigger detection mid-statement
      // and report at the continuation line instead of the first
      // physical line).
      for (size_t lk = lj + 1; lk-- > li;) {
        std::string_view t = TrimView(file.code[lk]);
        if (!t.empty() && t[0] != '#') {
          prev_meaningful = t.back();
          break;
        }
      }
      li = lj;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R2 — raw nondeterminism in deterministic subsystems.
// ---------------------------------------------------------------------------

constexpr std::string_view kR2Scopes[] = {
    "src/core/",       "src/stats/",           "src/lp/",
    "src/util/parallel/", "src/util/retry",    "src/util/metrics",
    "src/table/shard_loader"};

bool InR2Scope(const std::string& normalized_path) {
  for (std::string_view scope : kR2Scopes) {
    if (normalized_path.find(scope) != std::string::npos) return true;
  }
  return false;
}

void CheckR2(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!InR2Scope(NormalizedPath(file.path))) return;
  struct Pattern {
    std::string_view token;
    bool ident_boundary;  // require non-identifier char before the match
    std::string_view what;
  };
  static constexpr Pattern kPatterns[] = {
      {"rand(", true, "rand()"},
      {"srand(", true, "srand()"},
      {"random_device", true, "std::random_device"},
      {"std::time(", false, "std::time()"},
      {"gettimeofday", true, "gettimeofday()"},
      {"::now(", false, "a wall-clock read (Clock::now)"},
  };
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (const Pattern& p : kPatterns) {
      bool hit = p.ident_boundary ? ContainsToken(line, p.token)
                                  : line.find(p.token) != std::string::npos;
      if (!hit || supp.Covers(li + 1, "R2")) continue;
      out->push_back(
          {file.path, li + 1, "R2",
           std::string("raw nondeterminism: ") + std::string(p.what) +
               " inside a deterministic subsystem (DESIGN.md §4a); seed "
               "an explicit util::Rng or suppress with a reason if this "
               "is pure wall-clock telemetry"});
      break;  // one report per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R3 — failpoint names vs. the registry.
// ---------------------------------------------------------------------------

struct FailpointRegistration {
  std::string const_name;  // e.g. kFpCsvOpen
  std::string name;        // e.g. csv.open
  const SourceFile* file = nullptr;
  size_t line = 0;
};

bool IsRegistryFile(const SourceFile& file) {
  for (const std::string& line : file.code) {
    if (line.find("kAllFailpoints") != std::string::npos) return true;
  }
  return false;
}

/// Parses `... kFpFoo = "component.operation";` registration lines.
std::vector<FailpointRegistration> ParseRegistry(const SourceFile& file) {
  std::vector<FailpointRegistration> regs;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = line.find("kFp");
    if (pos == std::string::npos) continue;
    if (line.find('=', pos) == std::string::npos) continue;
    size_t end = pos;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    if (end == pos + 3) continue;  // bare "kFp"
    if (file.literals[li].size() != 1) continue;
    const std::string& name = file.literals[li][0];
    if (!IsFailpointShaped(name)) continue;
    regs.push_back({line.substr(pos, end - pos), name, &file, li + 1});
  }
  return regs;
}

constexpr std::string_view kFailpointCalls[] = {"FailpointFires(",
                                                "FailpointFiresCode(",
                                                "FailpointFiresKeyed(",
                                                "ShouldFail(",
                                                "ShouldFailWithCode(",
                                                "ShouldFailKeyed(",
                                                "InjectedFault("};

void CheckR3(const std::vector<SourceFile>& files,
             const std::vector<const SourceFile*>& registry_files,
             const std::vector<Suppressions>& supps,
             std::vector<Violation>* out) {
  if (registry_files.empty()) return;  // nothing to check against
  std::vector<FailpointRegistration> regs;
  for (const SourceFile* reg_file : registry_files) {
    auto parsed = ParseRegistry(*reg_file);
    regs.insert(regs.end(), parsed.begin(), parsed.end());
  }
  std::set<std::string> registered;
  for (const auto& r : regs) registered.insert(r.name);

  auto is_registry = [&](const SourceFile& f) {
    for (const SourceFile* reg_file : registry_files) {
      if (reg_file == &f) return true;
    }
    // The registry's own .cc (grammar diagnostics, kAllFailpoints walker)
    // does not count as a use site either.
    return Basename(NormalizedPath(f.path)) == "failpoint.cc";
  };

  std::map<std::string, size_t> uses;  // registered name -> use count
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    if (is_registry(file)) continue;
    const Suppressions& supp = supps[fi];
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      // Uses via the kFp constants.
      for (const auto& r : regs) {
        if (ContainsToken(line, r.const_name)) ++uses[r.name];
      }
      // Literal names at injection-site calls.
      bool at_call_site = false;
      for (std::string_view call : kFailpointCalls) {
        if (line.find(call) != std::string::npos) at_call_site = true;
      }
      for (const std::string& lit : file.literals[li]) {
        if (IsFailpointShaped(lit)) {
          if (registered.count(lit)) {
            ++uses[lit];
          } else if (at_call_site && !supp.Covers(li + 1, "R3")) {
            out->push_back({file.path, li + 1, "R3",
                            "failpoint '" + lit +
                                "' is not registered in kAllFailpoints "
                                "(src/util/failpoint.h)"});
          }
          continue;
        }
        // Arming specs: "name=on,other.name:p=0.5,seed=7".
        if (lit.find("=on") == std::string::npos &&
            lit.find("=off") == std::string::npos &&
            lit.find(":p=") == std::string::npos) {
          continue;
        }
        std::string_view rest = lit;
        while (!rest.empty()) {
          size_t comma = rest.find(',');
          std::string_view entry = TrimView(rest.substr(0, comma));
          rest = comma == std::string_view::npos
                     ? std::string_view()
                     : rest.substr(comma + 1);
          size_t cut = entry.find_first_of(":=");
          if (cut == std::string_view::npos) continue;
          std::string name(TrimView(entry.substr(0, cut)));
          if (!IsFailpointShaped(name)) continue;  // all / seed / prose
          if (registered.count(name)) {
            ++uses[name];
          } else if (!supp.Covers(li + 1, "R3")) {
            out->push_back({file.path, li + 1, "R3",
                            "failpoint '" + name +
                                "' in arming spec is not registered in "
                                "kAllFailpoints (src/util/failpoint.h)"});
          }
        }
      }
    }
  }

  for (const auto& r : regs) {
    if (uses[r.name] == 0) {
      out->push_back({r.file->path, r.line, "R3",
                      "failpoint '" + r.name + "' (" + r.const_name +
                          ") is registered but no code site uses it — "
                          "dead registration"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R4 — AT_CHECK on untrusted-input paths.
// ---------------------------------------------------------------------------

/// Files whose whole job is parsing untrusted bytes; DESIGN.md §4c moved
/// them to Status, so a new AT_CHECK there would abort on bad *input*.
constexpr std::string_view kR4Basenames[] = {
    "csv.cc", "csv.h", "serialization.cc", "serialization.h",
    "autotest_cli.cpp"};

bool InR4Scope(const std::string& normalized_path) {
  std::string base = Basename(normalized_path);
  for (std::string_view b : kR4Basenames) {
    if (base == b) return true;
  }
  return normalized_path.find("recipe") != std::string::npos;
}

void CheckR4(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!InR4Scope(NormalizedPath(file.path))) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::string_view trimmed = TrimView(file.code[li]);
    if (!trimmed.empty() && trimmed[0] == '#') continue;  // #define/#include
    if (!ContainsToken(trimmed, "AT_CHECK")) continue;
    if (supp.Covers(li + 1, "R4")) continue;
    out->push_back(
        {file.path, li + 1, "R4",
         "AT_CHECK on an untrusted-input path; corrupt bytes must surface "
         "as a Status, not an abort (DESIGN.md §4c)"});
  }
}

// ---------------------------------------------------------------------------
// Rule R5 — Status/Result<T> declarations missing [[nodiscard]].
// ---------------------------------------------------------------------------

bool IsHeaderPath(const std::string& normalized_path) {
  return normalized_path.size() >= 2 &&
         (normalized_path.rfind(".h") == normalized_path.size() - 2 ||
          normalized_path.rfind(".hpp") == normalized_path.size() - 4);
}

/// True if the prefix of a line before a candidate return type consists
/// only of whitespace, attributes and declaration specifiers.
bool PrefixIsDeclSpecifiers(std::string_view prefix, bool* saw_nodiscard) {
  static constexpr std::string_view kSpecifiers[] = {
      "static", "virtual", "inline", "constexpr", "friend", "explicit",
      "const"};
  size_t i = 0;
  while (i < prefix.size()) {
    char c = prefix[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '[' && i + 1 < prefix.size() && prefix[i + 1] == '[') {
      size_t close = prefix.find("]]", i);
      if (close == std::string_view::npos) return false;
      if (prefix.substr(i, close - i).find("nodiscard") !=
          std::string_view::npos) {
        *saw_nodiscard = true;
      }
      i = close + 2;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < prefix.size() && IsIdentChar(prefix[i])) ++i;
      std::string_view word = prefix.substr(start, i - start);
      bool known = false;
      for (std::string_view s : kSpecifiers) {
        if (word == s) known = true;
      }
      if (!known) return false;
      continue;
    }
    return false;  // '=', 'return ... ;', template brackets, etc.
  }
  return true;
}

void CheckR5(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!IsHeaderPath(NormalizedPath(file.path))) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::string_view type : {std::string_view("Status"),
                                  std::string_view("Result")}) {
      size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        size_t match = pos;
        pos += type.size();
        // Token boundaries: reject StatusCode / SolveStatus etc.
        if (pos < line.size() && IsIdentChar(line[pos])) continue;
        if (match > 0 && IsIdentChar(line[match - 1])) continue;
        size_t after = pos;
        if (type == "Result") {
          if (after >= line.size() || line[after] != '<') continue;
          int depth = 0;
          while (after < line.size()) {
            if (line[after] == '<') ++depth;
            if (line[after] == '>' && --depth == 0) {
              ++after;
              break;
            }
            ++after;
          }
          if (depth != 0) continue;  // template args continue past the line
        }
        // Extend left over a namespace qualification (util::Status ...).
        size_t type_start = match;
        while (type_start >= 2 && line[type_start - 1] == ':' &&
               line[type_start - 2] == ':') {
          size_t q = type_start - 2;
          while (q > 0 && IsIdentChar(line[q - 1])) --q;
          type_start = q;
        }
        // Reference / pointer returns don't hold the diagnostic by value.
        size_t cursor = after;
        while (cursor < line.size() &&
               std::isspace(static_cast<unsigned char>(line[cursor]))) {
          ++cursor;
        }
        if (cursor < line.size() &&
            (line[cursor] == '&' || line[cursor] == '*')) {
          continue;
        }
        // Function name directly after the type...
        size_t name_start = cursor;
        while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
        if (cursor == name_start) continue;  // constructor or cast
        while (cursor < line.size() &&
               std::isspace(static_cast<unsigned char>(line[cursor]))) {
          ++cursor;
        }
        // ...followed by its parameter list: this is a declaration.
        if (cursor >= line.size() || line[cursor] != '(') continue;
        bool saw_nodiscard = false;
        if (!PrefixIsDeclSpecifiers(
                std::string_view(line).substr(0, type_start),
                &saw_nodiscard)) {
          continue;
        }
        if (!saw_nodiscard && li > 0) {
          // The attribute may sit at the end of the previous line.
          std::string_view prev = TrimView(file.code[li - 1]);
          if (prev.size() >= 2 && prev.substr(prev.size() - 2) == "]]" &&
              prev.find("nodiscard") != std::string_view::npos) {
            saw_nodiscard = true;
          }
        }
        if (!saw_nodiscard && !supp.Covers(li + 1, "R5")) {
          out->push_back(
              {file.path, li + 1, "R5",
               "declaration returning " + std::string(type) +
                   (type == "Result" ? "<T>" : "") +
                   " by value is missing [[nodiscard]] (the error layer's "
                   "diagnostics must not be silently droppable)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R6 — metric names vs. the catalogue in src/util/metrics.h.
// ---------------------------------------------------------------------------

struct MetricRegistration {
  std::string const_name;  // e.g. kMParallelSteals
  std::string name;        // e.g. parallel.steals
  const SourceFile* file = nullptr;
  size_t line = 0;
};

bool IsMetricsRegistryFile(const SourceFile& file) {
  for (const std::string& line : file.code) {
    if (line.find("kAllMetrics") != std::string::npos) return true;
  }
  return false;
}

/// `<segment>(.<segment>)+` of [a-z0-9_], each segment starting with a
/// letter — the metric naming contract. Two or more segments (unlike
/// failpoints' exactly-two: `failpoint.<site>.evals` has four).
bool IsMetricShaped(std::string_view s) {
  size_t segments = 0;
  size_t start = 0;
  while (true) {
    size_t dot = s.find('.', start);
    std::string_view part = s.substr(
        start, dot == std::string_view::npos ? s.size() - start : dot - start);
    if (part.empty() ||
        !std::islower(static_cast<unsigned char>(part.front()))) {
      return false;
    }
    for (char c : part) {
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

/// Parses `... kMFoo = "component.name";` catalogue lines, including the
/// clang-format-wrapped form where the literal sits alone on the next
/// line after the `=`.
std::vector<MetricRegistration> ParseMetricsRegistry(const SourceFile& file) {
  std::vector<MetricRegistration> regs;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = 0;
    while ((pos = line.find("kM", pos)) != std::string::npos &&
           pos > 0 && IsIdentChar(line[pos - 1])) {
      pos += 2;
    }
    if (pos == std::string::npos) continue;
    if (line.find('=', pos) == std::string::npos) continue;
    size_t end = pos;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    // The catalogue style is kM + UpperCamel; skips kMax-style locals.
    if (end < pos + 3 ||
        !std::isupper(static_cast<unsigned char>(line[pos + 2]))) {
      continue;
    }
    size_t lit_line = li;
    if (file.literals[li].size() != 1) {
      // Wrapped registration: `kMFoo =` / `    "component.name";`.
      if (!file.literals[li].empty() || li + 1 >= file.code.size() ||
          file.literals[li + 1].size() != 1) {
        continue;
      }
      lit_line = li + 1;
    }
    const std::string& name = file.literals[lit_line][0];
    if (!IsMetricShaped(name)) continue;
    regs.push_back({line.substr(pos, end - pos), name, &file, li + 1});
  }
  return regs;
}

constexpr std::string_view kMetricCalls[] = {"GetCounter(", "GetGauge(",
                                             "GetHistogram("};

void CheckR6(const std::vector<SourceFile>& files,
             const std::vector<const SourceFile*>& registry_files,
             const std::vector<Suppressions>& supps,
             std::vector<Violation>* out) {
  if (registry_files.empty()) return;  // nothing to check against
  std::vector<MetricRegistration> regs;
  for (const SourceFile* reg_file : registry_files) {
    auto parsed = ParseMetricsRegistry(*reg_file);
    regs.insert(regs.end(), parsed.begin(), parsed.end());
  }
  std::set<std::string> registered;
  for (const auto& r : regs) registered.insert(r.name);

  // Each catalogue constant must also appear in its file's kAllMetrics
  // array (definition alone = one mention).
  for (const auto& r : regs) {
    size_t mentions = 0;
    for (const std::string& line : r.file->code) {
      if (ContainsToken(line, r.const_name)) ++mentions;
    }
    if (mentions < 2) {
      out->push_back({r.file->path, r.line, "R6",
                      "metric '" + r.name + "' (" + r.const_name +
                          ") is defined but missing from the kAllMetrics "
                          "catalogue"});
    }
  }

  auto is_registry = [&](const SourceFile& f) {
    for (const SourceFile* reg_file : registry_files) {
      if (reg_file == &f) return true;
    }
    // The registry's own .cc (serializers, Snapshot walker) is not a use
    // site either.
    return Basename(NormalizedPath(f.path)) == "metrics.cc";
  };

  std::map<std::string, size_t> uses;  // registered name -> use count
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    if (is_registry(file)) continue;
    const Suppressions& supp = supps[fi];
    // Tests and benches mint ad-hoc names (`test.*`, per-bench gauges);
    // only src/ registrations must come from the static catalogue or a
    // documented dynamic family.
    bool in_src =
        NormalizedPath(file.path).find("src/") != std::string::npos;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      for (const auto& r : regs) {
        if (ContainsToken(line, r.const_name)) ++uses[r.name];
      }
      bool at_call_site = false;
      for (std::string_view call : kMetricCalls) {
        if (line.find(call) != std::string::npos) at_call_site = true;
      }
      for (const std::string& lit : file.literals[li]) {
        if (!IsMetricShaped(lit)) continue;
        if (registered.count(lit)) {
          ++uses[lit];
        } else if (at_call_site && in_src && !supp.Covers(li + 1, "R6")) {
          out->push_back(
              {file.path, li + 1, "R6",
               "metric '" + lit +
                   "' is not in the kAllMetrics catalogue "
                   "(src/util/metrics.h); add it there or build the name "
                   "from a documented dynamic family (DESIGN.md §4f)"});
        }
      }
    }
  }

  for (const auto& r : regs) {
    if (uses[r.name] == 0) {
      out->push_back({r.file->path, r.line, "R6",
                      "metric '" + r.name + "' (" + r.const_name +
                          ") is registered but no code site uses it — "
                          "dead registration"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rules R7-R9 — concurrency contracts over the declaration model
// (decl_model.h, DESIGN.md §4i). Scoped to src/ paths; the util::Mutex
// wrapper and the annotation macro header are the mechanism and exempt.
// ---------------------------------------------------------------------------

bool InConcurrencyScope(const std::string& normalized_path) {
  if (normalized_path.find("src/") == std::string::npos) return false;
  std::string base = Basename(normalized_path);
  return base != "mutex.h" && base != "thread_annotations.h";
}

/// `Class::member` (or the bare expression for classless scopes) — the
/// program-wide node name used by the lock-order graph and in messages.
std::string QualifiedLockName(const std::string& class_name,
                              const std::string& mutex) {
  return class_name.empty() ? mutex : class_name + "::" + mutex;
}

/// Merged member view across every file: a class's members are declared
/// in its header while the lock scopes that write them live in the .cc.
struct MemberInfo {
  bool is_mutex = false;
  bool is_condvar = false;
  bool is_atomic = false;
  bool guarded = false;
};
using MemberMap = std::map<std::string, MemberInfo>;  // "Class::member"

MemberMap BuildMemberMap(const std::vector<FileModel>& models) {
  MemberMap out;
  for (const FileModel& model : models) {
    for (const ClassDecl& cls : model.classes) {
      for (const MemberDecl& m : cls.members) {
        MemberInfo& info = out[cls.name + "::" + m.name];
        info.is_mutex |= m.is_mutex;
        info.is_condvar |= m.is_condvar;
        info.is_atomic |= m.is_atomic;
        info.guarded |= !m.guarded_by.empty();
      }
    }
  }
  return out;
}

/// Container mutators for the R7 write heuristic: `member_.push_back(x)`
/// mutates the member even though no assignment operator appears.
constexpr std::string_view kMutatorCalls[] = {
    "push",    "push_back", "pop",    "pop_back", "emplace",
    "emplace_back", "insert", "erase", "clear",   "swap",
    "resize",  "assign",    "reset"};

/// If the statement starting at `trimmed` writes an identifier (assign,
/// compound-assign, increment/decrement, or a mutating container call),
/// returns that identifier; empty otherwise.
std::string_view WrittenIdent(std::string_view trimmed) {
  // ++x_ / --x_
  if (trimmed.size() > 2 &&
      (trimmed.substr(0, 2) == "++" || trimmed.substr(0, 2) == "--")) {
    std::string_view rest = trimmed.substr(2);
    size_t end = 0;
    while (end < rest.size() && IsIdentChar(rest[end])) ++end;
    return rest.substr(0, end);
  }
  size_t end = 0;
  while (end < trimmed.size() && IsIdentChar(trimmed[end])) ++end;
  if (end == 0) return {};
  std::string_view ident = trimmed.substr(0, end);
  std::string_view rest = trimmed.substr(end);
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  if (rest.empty()) return {};
  // x_ = v; and the compound assignments (but not == / <= / >= / !=).
  if (rest[0] == '=' && (rest.size() < 2 || rest[1] != '=')) return ident;
  if (rest.size() >= 2 && rest[1] == '=' &&
      std::string_view("+-*/%&|^").find(rest[0]) !=
          std::string_view::npos) {
    return ident;
  }
  if (rest.size() >= 3 && (rest.substr(0, 3) == "<<=" ||
                           rest.substr(0, 3) == ">>=")) {
    return ident;
  }
  if (rest.substr(0, 2) == "++" || rest.substr(0, 2) == "--") return ident;
  // x_.push_back(v); — a mutating member-function call.
  if (rest[0] == '.') {
    rest.remove_prefix(1);
    size_t call_end = 0;
    while (call_end < rest.size() && IsIdentChar(rest[call_end])) {
      ++call_end;
    }
    if (call_end < rest.size() && rest[call_end] == '(') {
      std::string_view callee = rest.substr(0, call_end);
      for (std::string_view mut : kMutatorCalls) {
        if (callee == mut) return ident;
      }
    }
  }
  return {};
}

/// R7a: raw std:: synchronization members in src/ — the tree-wide
/// annotation policy requires the util::Mutex / util::CondVar wrappers so
/// Clang thread-safety analysis sees a capability.
/// R7b: a data member written inside a lock scope must carry
/// AT_GUARDED_BY (mutexes, condvars and atomics are self-synchronizing
/// and exempt).
void CheckR7(const SourceFile& file, const FileModel& model,
             const MemberMap& members, const Suppressions& supp,
             std::vector<Violation>* out) {
  for (const ClassDecl& cls : model.classes) {
    for (const MemberDecl& m : cls.members) {
      if (!m.is_raw_mutex || supp.Covers(m.line, "R7")) continue;
      out->push_back(
          {file.path, m.line, "R7",
           "raw std:: synchronization member '" + cls.name + "::" + m.name +
               "'; use util::Mutex / util::CondVar (src/util/mutex.h) so "
               "the capability is visible to Clang thread-safety analysis "
               "(DESIGN.md §4i)"});
    }
  }
  // One report per (line, member) even when scopes overlap.
  std::set<std::pair<size_t, std::string>> reported;
  for (const LockScope& scope : model.scopes) {
    if (scope.class_name.empty()) continue;  // no member context
    for (size_t line = scope.line + 1; line <= scope.end_line &&
                                       line <= file.code.size();
         ++line) {
      std::string_view trimmed = TrimView(file.code[line - 1]);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      std::string_view ident = WrittenIdent(trimmed);
      if (ident.empty() || ident.back() != '_') continue;
      std::string key = scope.class_name + "::" + std::string(ident);
      auto it = members.find(key);
      if (it == members.end()) continue;  // a local, or unknown class
      const MemberInfo& info = it->second;
      if (info.is_mutex || info.is_condvar || info.is_atomic ||
          info.guarded) {
        continue;
      }
      if (!reported.insert({line, key}).second) continue;
      if (supp.Covers(line, "R7")) continue;
      out->push_back(
          {file.path, line, "R7",
           "member '" + key + "' is written under the lock scope at line " +
               std::to_string(scope.line) + " (holds '" +
               QualifiedLockName(scope.class_name, scope.mutex) +
               "') but carries no AT_GUARDED_BY annotation"});
    }
  }
}

/// Calls that can block the calling thread: syscall-level socket I/O,
/// file streams and stdio, sleeps, and the project's own Try* I/O entry
/// points. Deliberately absent: CondVar waits (waiting under the lock is
/// the point) and shutdown() (non-blocking by contract, used to kick
/// peers during drain).
struct BlockingPattern {
  std::string_view token;
  bool ident_boundary;  // require a non-identifier char before the match
  std::string_view what;
};
constexpr BlockingPattern kBlockingPatterns[] = {
    {"::poll(", false, "poll()"},
    {"::accept(", false, "accept()"},
    {"::recv(", false, "recv()"},
    {"::send(", false, "send()"},
    {"::connect(", false, "connect()"},
    {"::read(", false, "read()"},
    {"::write(", false, "write()"},
    {"getline(", true, "getline()"},
    {"fread(", true, "fread()"},
    {"fwrite(", true, "fwrite()"},
    {"fopen(", true, "fopen()"},
    {"system(", true, "system()"},
    {"SleepMicros(", true, "SleepMicros()"},
    {"sleep_for(", true, "sleep_for()"},
    {"TryReadFrame(", true, "TryReadFrame() [socket I/O]"},
    {"TryWriteFrame(", true, "TryWriteFrame() [socket I/O]"},
    {"TryReadCsvFile(", true, "TryReadCsvFile() [file I/O]"},
    {"TryLoadRulesFromFile(", true, "TryLoadRulesFromFile() [file I/O]"},
    {"ifstream", true, "std::ifstream [file I/O]"},
    {"ofstream", true, "std::ofstream [file I/O]"},
};

void ReportR8InRange(const SourceFile& file, size_t first_line,
                     size_t last_line, const std::string& held,
                     const std::string& why, const Suppressions& supp,
                     std::set<size_t>* reported_lines,
                     std::vector<Violation>* out) {
  for (size_t line = first_line;
       line <= last_line && line <= file.code.size(); ++line) {
    const std::string& code = file.code[line - 1];
    for (const BlockingPattern& p : kBlockingPatterns) {
      bool hit = p.ident_boundary
                     ? ContainsToken(code, p.token)
                     : code.find(p.token) != std::string::npos;
      if (!hit) continue;
      if (!reported_lines->insert(line).second) break;
      if (supp.Covers(line, "R8")) break;
      out->push_back(
          {file.path, line, "R8",
           "blocking call " + std::string(p.what) + " while holding '" +
               held + "' (" + why +
               "); move the I/O outside the critical section "
               "(DESIGN.md §4i)"});
      break;  // one report per line
    }
  }
}

/// R8: no blocking call on a lock-holding path — inside a lexical lock
/// scope, or anywhere in the body of a function that declares
/// AT_REQUIRES (its callers hold the lock for it).
void CheckR8(const SourceFile& file, const FileModel& model,
             const Suppressions& supp, std::vector<Violation>* out) {
  std::set<size_t> reported_lines;
  for (const LockScope& scope : model.scopes) {
    ReportR8InRange(file, scope.line, scope.end_line,
                    QualifiedLockName(scope.class_name, scope.mutex),
                    "lock scope at line " + std::to_string(scope.line),
                    supp, &reported_lines, out);
  }
  for (const FunctionDef& fn : model.functions) {
    if (fn.requires_locks.empty()) continue;
    std::string held;
    for (const std::string& lock : fn.requires_locks) {
      if (!held.empty()) held += ", ";
      held += QualifiedLockName(fn.class_name, lock);
    }
    ReportR8InRange(file, fn.line, fn.end_line, held,
                    "AT_REQUIRES on '" + fn.name + "'", supp,
                    &reported_lines, out);
  }
}

/// One directed lock-order edge: `from` is acquired before `to`.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;   // provenance for the report
  size_t line = 0;
};

/// R9: the program-wide lock acquisition order must be a DAG. Edges come
/// from lexically nested lock scopes, AT_ACQUIRED_BEFORE / AFTER member
/// annotations, and scopes inside AT_REQUIRES functions (the required
/// lock is already held when the scope's lock is taken).
void CheckR9(const std::vector<const SourceFile*>& files,
             const std::vector<FileModel>& models,
             const std::vector<const Suppressions*>& supps,
             std::vector<Violation>* out) {
  std::vector<LockEdge> edges;
  std::map<std::string, const Suppressions*> supp_by_file;
  for (size_t i = 0; i < models.size(); ++i) {
    const FileModel& model = models[i];
    const std::string& path = files[i]->path;
    supp_by_file[path] = supps[i];
    for (const ClassDecl& cls : model.classes) {
      for (const MemberDecl& m : cls.members) {
        for (const std::string& later : m.acquired_before) {
          edges.push_back({QualifiedLockName(cls.name, m.name),
                           QualifiedLockName(cls.name, later), path,
                           m.line});
        }
        for (const std::string& earlier : m.acquired_after) {
          edges.push_back({QualifiedLockName(cls.name, earlier),
                           QualifiedLockName(cls.name, m.name), path,
                           m.line});
        }
      }
    }
    // Lexically nested scopes: outer acquired before inner.
    for (const LockScope& outer : model.scopes) {
      for (const LockScope& inner : model.scopes) {
        if (&outer == &inner) continue;
        if (inner.line <= outer.line || inner.line > outer.end_line) {
          continue;
        }
        edges.push_back(
            {QualifiedLockName(outer.class_name, outer.mutex),
             QualifiedLockName(inner.class_name, inner.mutex), path,
             inner.line});
      }
    }
    // Scopes inside an AT_REQUIRES body: the required lock is held on
    // entry, so it precedes every lock the body takes.
    for (const FunctionDef& fn : model.functions) {
      if (fn.requires_locks.empty()) continue;
      for (const LockScope& scope : model.scopes) {
        if (scope.line < fn.line || scope.line > fn.end_line) continue;
        for (const std::string& lock : fn.requires_locks) {
          edges.push_back(
              {QualifiedLockName(fn.class_name, lock),
               QualifiedLockName(scope.class_name, scope.mutex), path,
               scope.line});
        }
      }
    }
  }
  // Self-edges (a scope "nested" in another scope on the same mutex —
  // re-acquisition is a bug, but it is Clang TSA's bug to report, and the
  // common lexical cause is two sibling scopes the line-range heuristic
  // cannot tell apart) carry no ordering information.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const LockEdge& e) {
                               return e.from == e.to;
                             }),
              edges.end());
  // Deterministic order; first occurrence of each (from, to) wins.
  std::sort(edges.begin(), edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  std::map<std::pair<std::string, std::string>, const LockEdge*> unique;
  for (const LockEdge& e : edges) {
    unique.emplace(std::make_pair(e.from, e.to), &e);
  }
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const auto& [key, edge] : unique) adj[key.first].push_back(edge);

  // For every edge u->v, a v..u path means the graph has a cycle through
  // that edge. BFS gives the shortest back-path; reporting at the edge
  // keeps file:line provenance. Dedup by the cycle's node set.
  std::set<std::set<std::string>> seen_cycles;
  for (const auto& [key, edge] : unique) {
    const std::string& u = key.first;
    const std::string& v = key.second;
    std::map<std::string, const LockEdge*> via;  // node -> edge used
    std::deque<std::string> queue{v};
    std::set<std::string> visited{v};
    bool found = false;
    while (!queue.empty() && !found) {
      std::string node = queue.front();
      queue.pop_front();
      auto it = adj.find(node);
      if (it == adj.end()) continue;
      for (const LockEdge* next : it->second) {
        if (!visited.insert(next->to).second) continue;
        via[next->to] = next;
        if (next->to == u) {
          found = true;
          break;
        }
        queue.push_back(next->to);
      }
    }
    if (!found) continue;
    // Reconstruct u -> ... -> v -> u as edge + back-path.
    std::vector<const LockEdge*> chain{edge};
    std::string node = u;
    std::vector<const LockEdge*> back;
    while (node != v) {
      const LockEdge* step = via[node];
      back.push_back(step);
      node = step->from;
    }
    chain.insert(chain.end(), back.rbegin(), back.rend());
    std::set<std::string> cycle_nodes;
    for (const LockEdge* e : chain) cycle_nodes.insert(e->from);
    if (!seen_cycles.insert(cycle_nodes).second) continue;
    std::string msg = "lock-order cycle: ";
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += chain[i]->from + " -> " + chain[i]->to + " (" +
             chain[i]->file + ":" + std::to_string(chain[i]->line) + ")";
    }
    msg += "; a consistent acquisition order is required (DESIGN.md §4i)";
    auto supp_it = supp_by_file.find(edge->file);
    if (supp_it != supp_by_file.end() &&
        supp_it->second->Covers(edge->line, "R9")) {
      continue;
    }
    out->push_back({edge->file, edge->line, "R9", msg});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::string StaleSuppression::ToString() const {
  return file + ":" + std::to_string(line) + ": stale suppression: " +
         std::string(whole_file ? "disable-file(" : "disable(") + rule +
         ") no longer covers any violation — remove the tag";
}

bool LoadSourceFile(const std::string& path, SourceFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->path = path;
  out->raw.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out->raw.push_back(line);
  }
  StripAndCollect(out->raw, &out->code, &out->literals);
  return true;
}

namespace {

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkippedDirName(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git";
}

void Walk(const fs::path& root, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root.string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::directory_iterator it(root, ec), end; it != end && !ec;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (it->is_directory(ec)) {
      if (!SkippedDirName(p.filename().string())) Walk(p, out);
    } else if (HasSourceExtension(p)) {
      out->push_back(p.string());
    }
  }
}

}  // namespace

std::vector<std::string> CollectSources(
    const std::vector<std::string>& roots) {
  std::vector<std::string> out;
  for (const std::string& root : roots) Walk(fs::path(root), &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Violation> LintFiles(const std::vector<SourceFile>& files,
                                 std::vector<StaleSuppression>* stale) {
  std::vector<Violation> out;
  std::vector<Suppressions> supps;
  supps.reserve(files.size());
  std::vector<const SourceFile*> registry_files;
  std::vector<const SourceFile*> metric_registry_files;
  for (const SourceFile& file : files) {
    supps.push_back(ParseSuppressions(file));
    if (IsRegistryFile(file) &&
        Basename(NormalizedPath(file.path)) != "failpoint.cc") {
      registry_files.push_back(&file);
    }
    if (IsMetricsRegistryFile(file) &&
        Basename(NormalizedPath(file.path)) != "metrics.cc") {
      metric_registry_files.push_back(&file);
    }
  }
  // Declaration models for the concurrency rules, src/ scope only.
  std::vector<const SourceFile*> conc_files;
  std::vector<const Suppressions*> conc_supps;
  std::vector<FileModel> models;
  for (size_t i = 0; i < files.size(); ++i) {
    if (!InConcurrencyScope(NormalizedPath(files[i].path))) continue;
    conc_files.push_back(&files[i]);
    conc_supps.push_back(&supps[i]);
    models.push_back(BuildFileModel(files[i]));
  }
  const MemberMap members = BuildMemberMap(models);
  for (size_t i = 0; i < files.size(); ++i) {
    CheckR1(files[i], supps[i], &out);
    CheckR2(files[i], supps[i], &out);
    CheckR4(files[i], supps[i], &out);
    CheckR5(files[i], supps[i], &out);
  }
  for (size_t i = 0; i < models.size(); ++i) {
    CheckR7(*conc_files[i], models[i], members, *conc_supps[i], &out);
    CheckR8(*conc_files[i], models[i], *conc_supps[i], &out);
  }
  CheckR3(files, registry_files, supps, &out);
  CheckR6(files, metric_registry_files, supps, &out);
  CheckR9(conc_files, models, conc_supps, &out);
  if (stale != nullptr) {
    stale->clear();
    for (size_t i = 0; i < files.size(); ++i) {
      for (const Suppressions::Tag& tag : supps[i].tags) {
        if (tag.used) continue;
        stale->push_back(
            {files[i].path, tag.line, tag.rule, tag.whole_file});
      }
    }
    std::sort(stale->begin(), stale->end(),
              [](const StaleSuppression& a, const StaleSuppression& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Violation> LintTree(const std::vector<std::string>& roots,
                                std::vector<StaleSuppression>* stale) {
  std::vector<SourceFile> files;
  for (const std::string& path : CollectSources(roots)) {
    SourceFile file;
    if (LoadSourceFile(path, &file)) files.push_back(std::move(file));
  }
  return LintFiles(files, stale);
}

}  // namespace autotest::lint
