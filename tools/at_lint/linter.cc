#include "at_lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace autotest::lint {

namespace fs = std::filesystem;

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// True if `token` occurs in `line` starting at a non-identifier boundary
/// (the char before, if any, is not part of an identifier).
bool ContainsToken(std::string_view line, std::string_view token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    if (pos == 0 || !IsIdentChar(line[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

/// `<component>.<operation>`, lower-case — the failpoint naming scheme.
bool IsFailpointShaped(std::string_view s) {
  size_t dot = s.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == s.size()) {
    return false;
  }
  if (s.find('.', dot + 1) != std::string_view::npos) return false;
  auto lower_ident = [](std::string_view part) {
    if (!std::islower(static_cast<unsigned char>(part.front()))) return false;
    for (char c : part) {
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    return true;
  };
  return lower_ident(s.substr(0, dot)) && lower_ident(s.substr(dot + 1));
}

/// Normalizes path separators so scope checks work on any input spelling.
std::string NormalizedPath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---------------------------------------------------------------------------
// Preprocessing: comment stripping, literal extraction, suppressions.
// ---------------------------------------------------------------------------

/// Builds the code view (comments removed, literal bodies blanked) and the
/// per-line literal list from raw text. Line structure is preserved.
void StripAndCollect(const std::vector<std::string>& raw,
                     std::vector<std::string>* code,
                     std::vector<std::vector<std::string>>* literals) {
  enum class State { kNormal, kLineComment, kBlockComment, kString, kChar };
  State state = State::kNormal;
  std::string current_literal;

  code->assign(raw.size(), std::string());
  literals->assign(raw.size(), {});
  for (size_t li = 0; li < raw.size(); ++li) {
    const std::string& in = raw[li];
    std::string& out = (*code)[li];
    out.reserve(in.size());
    if (state == State::kLineComment) state = State::kNormal;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kNormal:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = in.size();  // rest of the line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kString;
            current_literal.clear();
            out += '"';
          } else if (c == '\'') {
            state = State::kChar;
            out += '\'';
          } else {
            out += c;
          }
          break;
        case State::kLineComment:
          i = in.size();
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kNormal;
            out += "  ";
            ++i;
          } else {
            out += ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < in.size()) {
            current_literal += c;
            current_literal += next;
            out += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kNormal;
            (*literals)[li].push_back(current_literal);
            out += '"';
          } else {
            current_literal += c;
            out += ' ';
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < in.size()) {
            out += "  ";
            ++i;
          } else if (c == '\'') {
            state = State::kNormal;
            out += '\'';
          } else {
            out += ' ';
          }
          break;
      }
    }
    // An unterminated string at end-of-line: adjacent-line literals are not
    // a thing in this codebase; close it to stay line-oriented.
    if (state == State::kString) {
      (*literals)[li].push_back(current_literal);
      state = State::kNormal;
    }
    if (state == State::kChar) state = State::kNormal;
  }
}

/// Per-file suppression state parsed from `at_lint:` comments.
struct Suppressions {
  /// Rules disabled for the whole file.
  std::set<std::string> file_rules;
  /// (line, rule) pairs; a line-level disable covers its own line and the
  /// one after it, so the comment can sit above the offending statement.
  std::set<std::pair<size_t, std::string>> line_rules;

  bool Covers(size_t line, const std::string& rule) const {
    return file_rules.count(rule) > 0 ||
           line_rules.count({line, rule}) > 0;
  }
};

void ParseRuleList(std::string_view text, size_t line, bool whole_file,
                   Suppressions* out) {
  size_t close = text.find(')');
  if (close == std::string_view::npos) return;
  std::string_view inside = text.substr(0, close);
  size_t start = 0;
  while (start <= inside.size()) {
    size_t comma = inside.find(',', start);
    size_t end = comma == std::string_view::npos ? inside.size() : comma;
    std::string rule(TrimView(inside.substr(start, end - start)));
    if (!rule.empty()) {
      if (whole_file) {
        out->file_rules.insert(rule);
      } else {
        out->line_rules.insert({line, rule});
        out->line_rules.insert({line + 1, rule});
      }
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
}

Suppressions ParseSuppressions(const SourceFile& file) {
  constexpr std::string_view kLineTag = "at_lint: disable(";
  constexpr std::string_view kFileTag = "at_lint: disable-file(";
  Suppressions out;
  for (size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    size_t pos = line.find(kFileTag);
    if (pos != std::string::npos) {
      ParseRuleList(std::string_view(line).substr(pos + kFileTag.size()),
                    li + 1, /*whole_file=*/true, &out);
      continue;
    }
    pos = line.find(kLineTag);
    if (pos != std::string::npos) {
      ParseRuleList(std::string_view(line).substr(pos + kLineTag.size()),
                    li + 1, /*whole_file=*/false, &out);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule R1 — discarded Status / Result<T> values.
// ---------------------------------------------------------------------------

/// True if the called function name propagates the Status contract: the
/// Try* naming convention plus the registry's Configure.
bool IsStatusReturningName(std::string_view name) {
  if (name == "Configure") return true;
  return name.size() > 3 && name.substr(0, 3) == "Try" &&
         std::isupper(static_cast<unsigned char>(name[3]));
}

/// Analyses one full statement (joined across lines, comments stripped,
/// literals blanked). Returns the name of the final call in a plain
/// expression chain (`a::b().TryFoo(args);`) when the chain is the whole
/// statement — i.e. the value of that call is discarded. Empty when the
/// statement is anything else: a declaration (two adjacent identifiers),
/// an assignment, a return, a cast, a control-flow keyword.
std::string DiscardedCallName(std::string_view stmt) {
  size_t i = 0;
  std::string last_call;
  bool prev_was_ident = false;
  while (i < stmt.size()) {
    char c = stmt[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < stmt.size() && IsIdentChar(stmt[i])) ++i;
      std::string_view word = stmt.substr(start, i - start);
      if (i < stmt.size() && stmt[i] == '(') {
        if (prev_was_ident) return "";  // `Type name(...)` — a declaration
        // A call: skip its balanced argument list and carry on with
        // whatever is chained after it.
        int depth = 0;
        while (i < stmt.size()) {
          if (stmt[i] == '(') ++depth;
          if (stmt[i] == ')' && --depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
        if (depth != 0) return "";  // unbalanced (macro soup) — bail
        last_call = std::string(word);
        prev_was_ident = false;
        continue;
      }
      if (prev_was_ident) return "";  // `Type name` — a declaration
      prev_was_ident = true;
      continue;
    }
    if (c == ':' && i + 1 < stmt.size() && stmt[i + 1] == ':') {
      i += 2;
      prev_was_ident = false;
      continue;
    }
    if (c == '.' ||
        (c == '-' && i + 1 < stmt.size() && stmt[i + 1] == '>')) {
      i += c == '.' ? 1 : 2;
      prev_was_ident = false;
      continue;
    }
    if (c == ';') return last_call;  // end of the bare expression chain
    return "";  // '=', '<', '(', keywords with operators... — value used
  }
  return "";
}

/// Finds violations of the form `expr.TryFoo(args);` / `TryFoo(args);`
/// where the returned value is not consumed. A statement starts on a line
/// whose previous meaningful code char is one of `;{}:` (or the file
/// begins there) and is joined across lines up to its terminating `;`.
void CheckR1(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  char prev_meaningful = ';';  // file start behaves like a statement start
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::string_view trimmed = TrimView(file.code[li]);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') continue;  // preprocessor: neither code nor end
    char statement_opener = prev_meaningful;
    prev_meaningful = trimmed.back();
    if (statement_opener != ';' && statement_opener != '{' &&
        statement_opener != '}' && statement_opener != ':') {
      continue;  // mid-statement continuation line
    }
    // Join the statement across lines, up to the ';' that ends it.
    std::string stmt(trimmed);
    size_t lj = li;
    while (stmt.find(';') == std::string::npos &&
           lj + 1 < file.code.size() && lj - li < 40) {
      ++lj;
      stmt += ' ';
      stmt += TrimView(file.code[lj]);
    }
    std::string call = DiscardedCallName(stmt);
    if (!call.empty() && IsStatusReturningName(call) &&
        !supp.Covers(li + 1, "R1")) {
      out->push_back({file.path, li + 1, "R1",
                      "result of '" + call +
                          "(...)' is discarded; Status/Result<T> carry "
                          "the diagnostic — consume it or cast to (void) "
                          "with a reason"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R2 — raw nondeterminism in deterministic subsystems.
// ---------------------------------------------------------------------------

constexpr std::string_view kR2Scopes[] = {
    "src/core/",       "src/stats/",           "src/lp/",
    "src/util/parallel/", "src/util/retry",    "src/util/metrics",
    "src/table/shard_loader"};

bool InR2Scope(const std::string& normalized_path) {
  for (std::string_view scope : kR2Scopes) {
    if (normalized_path.find(scope) != std::string::npos) return true;
  }
  return false;
}

void CheckR2(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!InR2Scope(NormalizedPath(file.path))) return;
  struct Pattern {
    std::string_view token;
    bool ident_boundary;  // require non-identifier char before the match
    std::string_view what;
  };
  static constexpr Pattern kPatterns[] = {
      {"rand(", true, "rand()"},
      {"srand(", true, "srand()"},
      {"random_device", true, "std::random_device"},
      {"std::time(", false, "std::time()"},
      {"gettimeofday", true, "gettimeofday()"},
      {"::now(", false, "a wall-clock read (Clock::now)"},
  };
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (const Pattern& p : kPatterns) {
      bool hit = p.ident_boundary ? ContainsToken(line, p.token)
                                  : line.find(p.token) != std::string::npos;
      if (!hit || supp.Covers(li + 1, "R2")) continue;
      out->push_back(
          {file.path, li + 1, "R2",
           std::string("raw nondeterminism: ") + std::string(p.what) +
               " inside a deterministic subsystem (DESIGN.md §4a); seed "
               "an explicit util::Rng or suppress with a reason if this "
               "is pure wall-clock telemetry"});
      break;  // one report per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R3 — failpoint names vs. the registry.
// ---------------------------------------------------------------------------

struct FailpointRegistration {
  std::string const_name;  // e.g. kFpCsvOpen
  std::string name;        // e.g. csv.open
  const SourceFile* file = nullptr;
  size_t line = 0;
};

bool IsRegistryFile(const SourceFile& file) {
  for (const std::string& line : file.code) {
    if (line.find("kAllFailpoints") != std::string::npos) return true;
  }
  return false;
}

/// Parses `... kFpFoo = "component.operation";` registration lines.
std::vector<FailpointRegistration> ParseRegistry(const SourceFile& file) {
  std::vector<FailpointRegistration> regs;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = line.find("kFp");
    if (pos == std::string::npos) continue;
    if (line.find('=', pos) == std::string::npos) continue;
    size_t end = pos;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    if (end == pos + 3) continue;  // bare "kFp"
    if (file.literals[li].size() != 1) continue;
    const std::string& name = file.literals[li][0];
    if (!IsFailpointShaped(name)) continue;
    regs.push_back({line.substr(pos, end - pos), name, &file, li + 1});
  }
  return regs;
}

constexpr std::string_view kFailpointCalls[] = {"FailpointFires(",
                                                "FailpointFiresCode(",
                                                "FailpointFiresKeyed(",
                                                "ShouldFail(",
                                                "ShouldFailWithCode(",
                                                "ShouldFailKeyed(",
                                                "InjectedFault("};

void CheckR3(const std::vector<SourceFile>& files,
             const std::vector<const SourceFile*>& registry_files,
             const std::vector<Suppressions>& supps,
             std::vector<Violation>* out) {
  if (registry_files.empty()) return;  // nothing to check against
  std::vector<FailpointRegistration> regs;
  for (const SourceFile* reg_file : registry_files) {
    auto parsed = ParseRegistry(*reg_file);
    regs.insert(regs.end(), parsed.begin(), parsed.end());
  }
  std::set<std::string> registered;
  for (const auto& r : regs) registered.insert(r.name);

  auto is_registry = [&](const SourceFile& f) {
    for (const SourceFile* reg_file : registry_files) {
      if (reg_file == &f) return true;
    }
    // The registry's own .cc (grammar diagnostics, kAllFailpoints walker)
    // does not count as a use site either.
    return Basename(NormalizedPath(f.path)) == "failpoint.cc";
  };

  std::map<std::string, size_t> uses;  // registered name -> use count
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    if (is_registry(file)) continue;
    const Suppressions& supp = supps[fi];
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      // Uses via the kFp constants.
      for (const auto& r : regs) {
        if (ContainsToken(line, r.const_name)) ++uses[r.name];
      }
      // Literal names at injection-site calls.
      bool at_call_site = false;
      for (std::string_view call : kFailpointCalls) {
        if (line.find(call) != std::string::npos) at_call_site = true;
      }
      for (const std::string& lit : file.literals[li]) {
        if (IsFailpointShaped(lit)) {
          if (registered.count(lit)) {
            ++uses[lit];
          } else if (at_call_site && !supp.Covers(li + 1, "R3")) {
            out->push_back({file.path, li + 1, "R3",
                            "failpoint '" + lit +
                                "' is not registered in kAllFailpoints "
                                "(src/util/failpoint.h)"});
          }
          continue;
        }
        // Arming specs: "name=on,other.name:p=0.5,seed=7".
        if (lit.find("=on") == std::string::npos &&
            lit.find("=off") == std::string::npos &&
            lit.find(":p=") == std::string::npos) {
          continue;
        }
        std::string_view rest = lit;
        while (!rest.empty()) {
          size_t comma = rest.find(',');
          std::string_view entry = TrimView(rest.substr(0, comma));
          rest = comma == std::string_view::npos
                     ? std::string_view()
                     : rest.substr(comma + 1);
          size_t cut = entry.find_first_of(":=");
          if (cut == std::string_view::npos) continue;
          std::string name(TrimView(entry.substr(0, cut)));
          if (!IsFailpointShaped(name)) continue;  // all / seed / prose
          if (registered.count(name)) {
            ++uses[name];
          } else if (!supp.Covers(li + 1, "R3")) {
            out->push_back({file.path, li + 1, "R3",
                            "failpoint '" + name +
                                "' in arming spec is not registered in "
                                "kAllFailpoints (src/util/failpoint.h)"});
          }
        }
      }
    }
  }

  for (const auto& r : regs) {
    if (uses[r.name] == 0) {
      out->push_back({r.file->path, r.line, "R3",
                      "failpoint '" + r.name + "' (" + r.const_name +
                          ") is registered but no code site uses it — "
                          "dead registration"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R4 — AT_CHECK on untrusted-input paths.
// ---------------------------------------------------------------------------

/// Files whose whole job is parsing untrusted bytes; DESIGN.md §4c moved
/// them to Status, so a new AT_CHECK there would abort on bad *input*.
constexpr std::string_view kR4Basenames[] = {
    "csv.cc", "csv.h", "serialization.cc", "serialization.h",
    "autotest_cli.cpp"};

bool InR4Scope(const std::string& normalized_path) {
  std::string base = Basename(normalized_path);
  for (std::string_view b : kR4Basenames) {
    if (base == b) return true;
  }
  return normalized_path.find("recipe") != std::string::npos;
}

void CheckR4(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!InR4Scope(NormalizedPath(file.path))) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::string_view trimmed = TrimView(file.code[li]);
    if (!trimmed.empty() && trimmed[0] == '#') continue;  // #define/#include
    if (!ContainsToken(trimmed, "AT_CHECK")) continue;
    if (supp.Covers(li + 1, "R4")) continue;
    out->push_back(
        {file.path, li + 1, "R4",
         "AT_CHECK on an untrusted-input path; corrupt bytes must surface "
         "as a Status, not an abort (DESIGN.md §4c)"});
  }
}

// ---------------------------------------------------------------------------
// Rule R5 — Status/Result<T> declarations missing [[nodiscard]].
// ---------------------------------------------------------------------------

bool IsHeaderPath(const std::string& normalized_path) {
  return normalized_path.size() >= 2 &&
         (normalized_path.rfind(".h") == normalized_path.size() - 2 ||
          normalized_path.rfind(".hpp") == normalized_path.size() - 4);
}

/// True if the prefix of a line before a candidate return type consists
/// only of whitespace, attributes and declaration specifiers.
bool PrefixIsDeclSpecifiers(std::string_view prefix, bool* saw_nodiscard) {
  static constexpr std::string_view kSpecifiers[] = {
      "static", "virtual", "inline", "constexpr", "friend", "explicit",
      "const"};
  size_t i = 0;
  while (i < prefix.size()) {
    char c = prefix[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '[' && i + 1 < prefix.size() && prefix[i + 1] == '[') {
      size_t close = prefix.find("]]", i);
      if (close == std::string_view::npos) return false;
      if (prefix.substr(i, close - i).find("nodiscard") !=
          std::string_view::npos) {
        *saw_nodiscard = true;
      }
      i = close + 2;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < prefix.size() && IsIdentChar(prefix[i])) ++i;
      std::string_view word = prefix.substr(start, i - start);
      bool known = false;
      for (std::string_view s : kSpecifiers) {
        if (word == s) known = true;
      }
      if (!known) return false;
      continue;
    }
    return false;  // '=', 'return ... ;', template brackets, etc.
  }
  return true;
}

void CheckR5(const SourceFile& file, const Suppressions& supp,
             std::vector<Violation>* out) {
  if (!IsHeaderPath(NormalizedPath(file.path))) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::string_view type : {std::string_view("Status"),
                                  std::string_view("Result")}) {
      size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        size_t match = pos;
        pos += type.size();
        // Token boundaries: reject StatusCode / SolveStatus etc.
        if (pos < line.size() && IsIdentChar(line[pos])) continue;
        if (match > 0 && IsIdentChar(line[match - 1])) continue;
        size_t after = pos;
        if (type == "Result") {
          if (after >= line.size() || line[after] != '<') continue;
          int depth = 0;
          while (after < line.size()) {
            if (line[after] == '<') ++depth;
            if (line[after] == '>' && --depth == 0) {
              ++after;
              break;
            }
            ++after;
          }
          if (depth != 0) continue;  // template args continue past the line
        }
        // Extend left over a namespace qualification (util::Status ...).
        size_t type_start = match;
        while (type_start >= 2 && line[type_start - 1] == ':' &&
               line[type_start - 2] == ':') {
          size_t q = type_start - 2;
          while (q > 0 && IsIdentChar(line[q - 1])) --q;
          type_start = q;
        }
        // Reference / pointer returns don't hold the diagnostic by value.
        size_t cursor = after;
        while (cursor < line.size() &&
               std::isspace(static_cast<unsigned char>(line[cursor]))) {
          ++cursor;
        }
        if (cursor < line.size() &&
            (line[cursor] == '&' || line[cursor] == '*')) {
          continue;
        }
        // Function name directly after the type...
        size_t name_start = cursor;
        while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
        if (cursor == name_start) continue;  // constructor or cast
        while (cursor < line.size() &&
               std::isspace(static_cast<unsigned char>(line[cursor]))) {
          ++cursor;
        }
        // ...followed by its parameter list: this is a declaration.
        if (cursor >= line.size() || line[cursor] != '(') continue;
        bool saw_nodiscard = false;
        if (!PrefixIsDeclSpecifiers(
                std::string_view(line).substr(0, type_start),
                &saw_nodiscard)) {
          continue;
        }
        if (!saw_nodiscard && li > 0) {
          // The attribute may sit at the end of the previous line.
          std::string_view prev = TrimView(file.code[li - 1]);
          if (prev.size() >= 2 && prev.substr(prev.size() - 2) == "]]" &&
              prev.find("nodiscard") != std::string_view::npos) {
            saw_nodiscard = true;
          }
        }
        if (!saw_nodiscard && !supp.Covers(li + 1, "R5")) {
          out->push_back(
              {file.path, li + 1, "R5",
               "declaration returning " + std::string(type) +
                   (type == "Result" ? "<T>" : "") +
                   " by value is missing [[nodiscard]] (the error layer's "
                   "diagnostics must not be silently droppable)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule R6 — metric names vs. the catalogue in src/util/metrics.h.
// ---------------------------------------------------------------------------

struct MetricRegistration {
  std::string const_name;  // e.g. kMParallelSteals
  std::string name;        // e.g. parallel.steals
  const SourceFile* file = nullptr;
  size_t line = 0;
};

bool IsMetricsRegistryFile(const SourceFile& file) {
  for (const std::string& line : file.code) {
    if (line.find("kAllMetrics") != std::string::npos) return true;
  }
  return false;
}

/// `<segment>(.<segment>)+` of [a-z0-9_], each segment starting with a
/// letter — the metric naming contract. Two or more segments (unlike
/// failpoints' exactly-two: `failpoint.<site>.evals` has four).
bool IsMetricShaped(std::string_view s) {
  size_t segments = 0;
  size_t start = 0;
  while (true) {
    size_t dot = s.find('.', start);
    std::string_view part = s.substr(
        start, dot == std::string_view::npos ? s.size() - start : dot - start);
    if (part.empty() ||
        !std::islower(static_cast<unsigned char>(part.front()))) {
      return false;
    }
    for (char c : part) {
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

/// Parses `... kMFoo = "component.name";` catalogue lines, including the
/// clang-format-wrapped form where the literal sits alone on the next
/// line after the `=`.
std::vector<MetricRegistration> ParseMetricsRegistry(const SourceFile& file) {
  std::vector<MetricRegistration> regs;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = 0;
    while ((pos = line.find("kM", pos)) != std::string::npos &&
           pos > 0 && IsIdentChar(line[pos - 1])) {
      pos += 2;
    }
    if (pos == std::string::npos) continue;
    if (line.find('=', pos) == std::string::npos) continue;
    size_t end = pos;
    while (end < line.size() && IsIdentChar(line[end])) ++end;
    // The catalogue style is kM + UpperCamel; skips kMax-style locals.
    if (end < pos + 3 ||
        !std::isupper(static_cast<unsigned char>(line[pos + 2]))) {
      continue;
    }
    size_t lit_line = li;
    if (file.literals[li].size() != 1) {
      // Wrapped registration: `kMFoo =` / `    "component.name";`.
      if (!file.literals[li].empty() || li + 1 >= file.code.size() ||
          file.literals[li + 1].size() != 1) {
        continue;
      }
      lit_line = li + 1;
    }
    const std::string& name = file.literals[lit_line][0];
    if (!IsMetricShaped(name)) continue;
    regs.push_back({line.substr(pos, end - pos), name, &file, li + 1});
  }
  return regs;
}

constexpr std::string_view kMetricCalls[] = {"GetCounter(", "GetGauge(",
                                             "GetHistogram("};

void CheckR6(const std::vector<SourceFile>& files,
             const std::vector<const SourceFile*>& registry_files,
             const std::vector<Suppressions>& supps,
             std::vector<Violation>* out) {
  if (registry_files.empty()) return;  // nothing to check against
  std::vector<MetricRegistration> regs;
  for (const SourceFile* reg_file : registry_files) {
    auto parsed = ParseMetricsRegistry(*reg_file);
    regs.insert(regs.end(), parsed.begin(), parsed.end());
  }
  std::set<std::string> registered;
  for (const auto& r : regs) registered.insert(r.name);

  // Each catalogue constant must also appear in its file's kAllMetrics
  // array (definition alone = one mention).
  for (const auto& r : regs) {
    size_t mentions = 0;
    for (const std::string& line : r.file->code) {
      if (ContainsToken(line, r.const_name)) ++mentions;
    }
    if (mentions < 2) {
      out->push_back({r.file->path, r.line, "R6",
                      "metric '" + r.name + "' (" + r.const_name +
                          ") is defined but missing from the kAllMetrics "
                          "catalogue"});
    }
  }

  auto is_registry = [&](const SourceFile& f) {
    for (const SourceFile* reg_file : registry_files) {
      if (reg_file == &f) return true;
    }
    // The registry's own .cc (serializers, Snapshot walker) is not a use
    // site either.
    return Basename(NormalizedPath(f.path)) == "metrics.cc";
  };

  std::map<std::string, size_t> uses;  // registered name -> use count
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    if (is_registry(file)) continue;
    const Suppressions& supp = supps[fi];
    // Tests and benches mint ad-hoc names (`test.*`, per-bench gauges);
    // only src/ registrations must come from the static catalogue or a
    // documented dynamic family.
    bool in_src =
        NormalizedPath(file.path).find("src/") != std::string::npos;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      for (const auto& r : regs) {
        if (ContainsToken(line, r.const_name)) ++uses[r.name];
      }
      bool at_call_site = false;
      for (std::string_view call : kMetricCalls) {
        if (line.find(call) != std::string::npos) at_call_site = true;
      }
      for (const std::string& lit : file.literals[li]) {
        if (!IsMetricShaped(lit)) continue;
        if (registered.count(lit)) {
          ++uses[lit];
        } else if (at_call_site && in_src && !supp.Covers(li + 1, "R6")) {
          out->push_back(
              {file.path, li + 1, "R6",
               "metric '" + lit +
                   "' is not in the kAllMetrics catalogue "
                   "(src/util/metrics.h); add it there or build the name "
                   "from a documented dynamic family (DESIGN.md §4f)"});
        }
      }
    }
  }

  for (const auto& r : regs) {
    if (uses[r.name] == 0) {
      out->push_back({r.file->path, r.line, "R6",
                      "metric '" + r.name + "' (" + r.const_name +
                          ") is registered but no code site uses it — "
                          "dead registration"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool LoadSourceFile(const std::string& path, SourceFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->path = path;
  out->raw.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out->raw.push_back(line);
  }
  StripAndCollect(out->raw, &out->code, &out->literals);
  return true;
}

namespace {

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkippedDirName(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git";
}

void Walk(const fs::path& root, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root.string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::directory_iterator it(root, ec), end; it != end && !ec;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (it->is_directory(ec)) {
      if (!SkippedDirName(p.filename().string())) Walk(p, out);
    } else if (HasSourceExtension(p)) {
      out->push_back(p.string());
    }
  }
}

}  // namespace

std::vector<std::string> CollectSources(
    const std::vector<std::string>& roots) {
  std::vector<std::string> out;
  for (const std::string& root : roots) Walk(fs::path(root), &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Violation> LintFiles(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  std::vector<Suppressions> supps;
  supps.reserve(files.size());
  std::vector<const SourceFile*> registry_files;
  std::vector<const SourceFile*> metric_registry_files;
  for (const SourceFile& file : files) {
    supps.push_back(ParseSuppressions(file));
    if (IsRegistryFile(file) &&
        Basename(NormalizedPath(file.path)) != "failpoint.cc") {
      registry_files.push_back(&file);
    }
    if (IsMetricsRegistryFile(file) &&
        Basename(NormalizedPath(file.path)) != "metrics.cc") {
      metric_registry_files.push_back(&file);
    }
  }
  for (size_t i = 0; i < files.size(); ++i) {
    CheckR1(files[i], supps[i], &out);
    CheckR2(files[i], supps[i], &out);
    CheckR4(files[i], supps[i], &out);
    CheckR5(files[i], supps[i], &out);
  }
  CheckR3(files, registry_files, supps, &out);
  CheckR6(files, metric_registry_files, supps, &out);
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Violation> LintTree(const std::vector<std::string>& roots) {
  std::vector<SourceFile> files;
  for (const std::string& path : CollectSources(roots)) {
    SourceFile file;
    if (LoadSourceFile(path, &file)) files.push_back(std::move(file));
  }
  return LintFiles(files);
}

}  // namespace autotest::lint
