#ifndef AUTOTEST_TOOLS_AT_LINT_LINTER_H_
#define AUTOTEST_TOOLS_AT_LINT_LINTER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

// at_lint — project-native static analysis for the Auto-Test tree.
//
// The PRs that introduced the deterministic parallel runtime (DESIGN.md
// §4a), the exception-free Status/Result<T> error layer and the named
// failpoints (§4c) established contracts that plain -Wall cannot enforce.
// at_lint walks the source tree at the token level (no libclang, no
// compilation) and reports violations as `file:line: [rule-id] message`,
// exiting 1 when anything fires:
//
//   R1  a Try*/Configure call whose Status/Result<T> value is discarded
//   R2  raw nondeterminism (rand, srand, std::random_device, std::time,
//       gettimeofday, any Clock::now) inside the deterministic subsystems
//       src/core, src/stats, src/lp, src/util/parallel
//   R3  failpoint-name literals unknown to the registry in
//       src/util/failpoint.h — and registered names no code ever uses
//   R4  AT_CHECK on untrusted-input paths already migrated to Status
//       (CSV parsing, rule serialization, recipe loading)
//   R5  a Status/Result<T>-returning declaration in a header missing
//       [[nodiscard]]
//   R6  metric-name literals in src/ unknown to the kAllMetrics catalogue
//       in src/util/metrics.h — plus catalogue constants missing from the
//       kAllMetrics array or registered but never used
//   R7  concurrency annotations in src/: raw std::mutex /
//       std::condition_variable members (use util::Mutex / util::CondVar),
//       and members written under a lock scope without AT_GUARDED_BY
//   R8  blocking calls (socket/file I/O, sleeps, Try* I/O entry points)
//       on a lock-holding path — a MutexLock scope or the body of an
//       AT_REQUIRES function
//   R9  program-wide lock acquisition graph from nested lock scopes and
//       AT_ACQUIRED_BEFORE/AFTER annotations must be acyclic; a cycle is
//       reported with the full offending chain
//
// R7-R9 run on the declaration model in decl_model.h (DESIGN.md §4i) and
// are scoped to src/ paths; the util::Mutex wrapper itself is exempt.
//
// Suppressions (see DESIGN.md §4d for when they are acceptable):
//   // at_lint: disable(R2) <reason>        this line and the next
//   // at_lint: disable-file(R2) <reason>   the whole file
//
// A suppression that no longer suppresses anything is reported by the
// stale-suppression audit (`at_lint --audit-suppressions`) so tags do not
// outlive the violation they were written for.
//
// Matching is line-oriented over a comment-stripped, string-blanked view
// of each file, so tokens inside comments or literals never fire a rule
// (and rule R3 inspects the literals themselves separately).

namespace autotest::lint {

struct Violation {
  std::string file;
  size_t line = 0;       // 1-based
  std::string rule;      // "R1".."R9"
  std::string message;

  std::string ToString() const;
};

/// A `at_lint: disable(...)` tag that covered no would-be violation in
/// this run: the code it excused has been fixed or moved, and the tag is
/// now suppressing nothing (or worse, a future regression).
struct StaleSuppression {
  std::string file;
  size_t line = 0;       // 1-based line of the tag comment
  std::string rule;      // the rule named by the tag
  bool whole_file = false;

  std::string ToString() const;
};

/// One scanned file with the precomputed views the rules match against.
struct SourceFile {
  std::string path;
  /// Original text, split into lines (index 0 = line 1).
  std::vector<std::string> raw;
  /// Comments removed, string/char literal bodies blanked to spaces. Same
  /// shape as `raw` so column offsets line up.
  std::vector<std::string> code;
  /// String-literal bodies per line, in order of appearance.
  std::vector<std::vector<std::string>> literals;
};

/// Reads and preprocesses one file. Returns false (and leaves *out empty)
/// if the file cannot be read.
bool LoadSourceFile(const std::string& path, SourceFile* out);

/// Recursively collects .h/.hpp/.cc/.cpp files under each root (a root
/// that is itself a file is taken as-is). Directories named
/// `lint_fixtures` or `build*` are skipped during the walk — but an
/// explicitly given root is always scanned, which is how the self-test
/// lints its violation fixtures. The result is sorted for deterministic
/// output.
std::vector<std::string> CollectSources(const std::vector<std::string>& roots);

/// Runs every rule over the given files and returns the violations
/// sorted by (file, line, rule). When `stale` is non-null it receives the
/// suppression tags that covered nothing, sorted by (file, line, rule).
std::vector<Violation> LintFiles(const std::vector<SourceFile>& files,
                                 std::vector<StaleSuppression>* stale = nullptr);

/// Convenience: CollectSources + LoadSourceFile + LintFiles.
std::vector<Violation> LintTree(const std::vector<std::string>& roots,
                                std::vector<StaleSuppression>* stale = nullptr);

}  // namespace autotest::lint

#endif  // AUTOTEST_TOOLS_AT_LINT_LINTER_H_
