// at_lint — walks the given roots and reports violations of the project's
// Status / determinism / failpoint / metrics / concurrency contracts
// (rules R1-R9, see linter.h and DESIGN.md §4d/§4i).
//
//   at_lint src tools tests          lint the tree (exit 1 on violations)
//   at_lint --audit-suppressions ... also warn about stale disable tags
//   at_lint --list-rules             print the rule catalogue
//
// Output format, one violation per line on stdout:
//   file:line: [R2] raw nondeterminism: rand() inside a deterministic ...
//
// --audit-suppressions additionally prints one warning line per
// `at_lint: disable(...)` tag that covered no would-be violation this
// run. Warnings go to stdout but never affect the exit code: a stale tag
// is hygiene debt, not a broken contract.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "at_lint/linter.h"

namespace {

constexpr const char* kRuleCatalogue =
    "R1  Try*/Configure call whose Status/Result<T> value is discarded\n"
    "R2  raw nondeterminism (rand, srand, std::random_device, std::time,\n"
    "    gettimeofday, Clock::now) in src/core, src/stats, src/lp,\n"
    "    src/util/parallel\n"
    "R3  failpoint-name literal absent from the registry in\n"
    "    src/util/failpoint.h, or a registered failpoint no code uses\n"
    "R4  AT_CHECK on an untrusted-input path (CSV, rule serialization,\n"
    "    recipe loading) that was migrated to Status\n"
    "R5  Status/Result<T>-returning declaration missing [[nodiscard]]\n"
    "R6  metric-name literal in src/ absent from the kAllMetrics\n"
    "    catalogue in src/util/metrics.h, a catalogue constant missing\n"
    "    from the kAllMetrics array, or a registered metric no code uses\n"
    "R7  raw std::mutex/std::condition_variable member in src/ (use\n"
    "    util::Mutex / util::CondVar), or a member written under a lock\n"
    "    scope without an AT_GUARDED_BY annotation\n"
    "R8  blocking call (socket/file I/O, sleeps, Try* I/O entry points)\n"
    "    inside a lock scope or an AT_REQUIRES function body\n"
    "R9  cycle in the program-wide lock acquisition graph built from\n"
    "    nested lock scopes and AT_ACQUIRED_BEFORE/AFTER annotations\n"
    "\n"
    "Suppress one line:   // at_lint: disable(R2) <reason>\n"
    "Suppress a file:     // at_lint: disable-file(R2) <reason>\n";

constexpr const char* kUsage =
    "usage: at_lint [--quiet] [--audit-suppressions] [--list-rules] "
    "<path>...\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool quiet = false;
  bool audit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      std::fputs(kRuleCatalogue, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
      continue;
    }
    if (std::strcmp(argv[i], "--audit-suppressions") == 0) {
      audit = true;
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kUsage, stderr);
      return 0;
    }
    roots.push_back(argv[i]);
  }
  if (roots.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::vector<autotest::lint::StaleSuppression> stale;
  std::vector<autotest::lint::Violation> violations =
      autotest::lint::LintTree(roots, audit ? &stale : nullptr);
  for (const auto& v : violations) {
    std::printf("%s\n", v.ToString().c_str());
  }
  for (const auto& s : stale) {
    std::printf("%s\n", s.ToString().c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "at_lint: %zu violation(s)\n", violations.size());
    if (audit) {
      std::fprintf(stderr, "at_lint: %zu stale suppression(s)\n",
                   stale.size());
    }
  }
  return violations.empty() ? 0 : 1;
}
