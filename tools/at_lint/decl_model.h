#ifndef AUTOTEST_TOOLS_AT_LINT_DECL_MODEL_H_
#define AUTOTEST_TOOLS_AT_LINT_DECL_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "at_lint/linter.h"

// A lightweight declaration model over the comment-stripped code view —
// the shared substrate of the concurrency rules R7-R9 (DESIGN.md §4i).
//
// This is not a C++ parser. It tracks exactly four things with a brace
// counter and a handful of token patterns:
//
//   - class/struct declarations and their data members, including the
//     AT_GUARDED_BY / AT_ACQUIRED_BEFORE / AT_ACQUIRED_AFTER annotations
//     (src/util/thread_annotations.h) and whether a member is a mutex;
//   - function/method definitions, resolved to their class via either the
//     `Ret Class::Method(...)` qualifier or the enclosing class body, plus
//     any AT_REQUIRES(...) capabilities on the signature;
//   - lexical lock scopes: `util::MutexLock l(&mu_);` and the std::
//     lock_guard / unique_lock / scoped_lock spellings, extending from the
//     acquisition line to the end of the enclosing block;
//   - which function/class each lock scope sits in, so a member mutex
//     `mu_` can be qualified program-wide as `Class::mu_`.
//
// The model deliberately errs toward under-reporting (a construct it
// cannot parse contributes nothing) because R7-R9 gate CI: a false
// negative is a missed diagnostic, a false positive is a broken build.

namespace autotest::lint {

struct MemberDecl {
  std::string name;
  size_t line = 0;  // 1-based declaration line
  /// A std::mutex / std::condition_variable flavor (R7a rejects these in
  /// src/ outside the util::Mutex wrapper itself).
  bool is_raw_mutex = false;
  /// Any mutex flavor, wrapper included (never needs AT_GUARDED_BY).
  bool is_mutex = false;
  /// util::CondVar / std::condition_variable (also exempt from R7b).
  bool is_condvar = false;
  /// std::atomic<...> members synchronize themselves; R7b skips them.
  bool is_atomic = false;
  /// AT_GUARDED_BY argument; empty when the member is unannotated.
  std::string guarded_by;
  std::vector<std::string> acquired_before;  // AT_ACQUIRED_BEFORE args
  std::vector<std::string> acquired_after;   // AT_ACQUIRED_AFTER args
};

struct ClassDecl {
  std::string name;
  size_t line = 0;
  std::vector<MemberDecl> members;
};

/// One lexical lock acquisition: a MutexLock / lock_guard / unique_lock /
/// scoped_lock declaration and the block it covers.
struct LockScope {
  /// The acquired expression with `&` / `this->` stripped: `mu_`.
  std::string mutex;
  /// Enclosing class ("" for free functions), from the method qualifier
  /// or the class body the scope sits in.
  std::string class_name;
  size_t line = 0;      // acquisition line, 1-based
  size_t end_line = 0;  // last line of the enclosing block, inclusive
};

struct FunctionDef {
  std::string class_name;  // "" for free functions
  std::string name;
  size_t line = 0;      // signature line, 1-based
  size_t end_line = 0;  // closing brace line, inclusive
  /// AT_REQUIRES arguments on the signature: the function runs with these
  /// capabilities held, so its body is a lock-holding path for R8/R9.
  std::vector<std::string> requires_locks;
};

struct FileModel {
  const SourceFile* file = nullptr;
  std::vector<ClassDecl> classes;
  std::vector<LockScope> scopes;
  std::vector<FunctionDef> functions;
};

/// Builds the declaration model for one preprocessed source file.
FileModel BuildFileModel(const SourceFile& file);

}  // namespace autotest::lint

#endif  // AUTOTEST_TOOLS_AT_LINT_DECL_MODEL_H_
