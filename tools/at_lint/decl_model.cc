#include "at_lint/decl_model.h"

#include <cctype>
#include <optional>
#include <string_view>

namespace autotest::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool ContainsToken(std::string_view line, std::string_view token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t after = pos + token.size();
    bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// The identifier ending at `end` (exclusive); empty when none.
std::string_view IdentEndingAt(std::string_view s, size_t end) {
  size_t start = end;
  while (start > 0 && IsIdentChar(s[start - 1])) --start;
  return s.substr(start, end - start);
}

/// Collects the comma-separated arguments of every `macro(...)` call on
/// the line, trimmed, into *out.
void CollectMacroArgs(std::string_view line, std::string_view macro,
                      std::vector<std::string>* out) {
  size_t pos = 0;
  std::string call = std::string(macro) + "(";
  while ((pos = line.find(call, pos)) != std::string_view::npos) {
    if (pos > 0 && IsIdentChar(line[pos - 1])) {
      pos += 1;
      continue;
    }
    size_t open = pos + call.size() - 1;
    int depth = 0;
    size_t close = open;
    while (close < line.size()) {
      if (line[close] == '(') ++depth;
      if (line[close] == ')' && --depth == 0) break;
      ++close;
    }
    if (close >= line.size()) return;  // args wrap to the next line — bail
    std::string_view inside = line.substr(open + 1, close - open - 1);
    size_t start = 0;
    while (start <= inside.size()) {
      size_t comma = inside.find(',', start);
      size_t end = comma == std::string_view::npos ? inside.size() : comma;
      std::string arg(TrimView(inside.substr(start, end - start)));
      if (!arg.empty()) out->push_back(arg);
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    pos = close + 1;
  }
}

/// Strips `&`, `this->` and surrounding space from a lock-acquisition
/// expression: `&this->mu_` -> `mu_`.
std::string NormalizeLockExpr(std::string_view expr) {
  expr = TrimView(expr);
  while (!expr.empty() && (expr.front() == '&' || expr.front() == '*')) {
    expr.remove_prefix(1);
    expr = TrimView(expr);
  }
  constexpr std::string_view kThis = "this->";
  if (expr.substr(0, kThis.size()) == kThis) {
    expr.remove_prefix(kThis.size());
  }
  return std::string(TrimView(expr));
}

constexpr std::string_view kControlKeywords[] = {
    "if", "for", "while", "switch", "return", "case", "do",
    "else", "catch", "sizeof", "new", "delete", "throw", "co_return"};

bool IsControlKeyword(std::string_view word) {
  for (std::string_view k : kControlKeywords) {
    if (word == k) return true;
  }
  return false;
}

/// Parses a `class X {` / `struct X {` opener. The name is the last
/// identifier before the '{' or the base-clause ':' — that skips
/// attribute macros (`class AT_SCOPED_CAPABILITY MutexLock {`) and
/// alignas. Returns nullopt for forward declarations, enum class, and
/// anything without a same-region '{'.
std::optional<std::string> ParseClassOpener(std::string_view line) {
  for (std::string_view kw : {std::string_view("class"),
                              std::string_view("struct")}) {
    size_t pos = 0;
    while ((pos = line.find(kw, pos)) != std::string_view::npos) {
      bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      size_t after = pos + kw.size();
      bool right_ok = after < line.size() && !IsIdentChar(line[after]);
      if (!left_ok || !right_ok) {
        pos += 1;
        continue;
      }
      // `enum class` is not a capability-bearing type.
      std::string_view before = IdentEndingAt(
          line, line.substr(0, pos).find_last_not_of(' ') + 1);
      if (before == "enum") return std::nullopt;
      size_t brace = line.find('{', after);
      if (brace == std::string_view::npos) return std::nullopt;
      size_t stop = brace;
      size_t base = line.find(':', after);
      // A lone ':' (not '::') before the brace starts the base clause.
      while (base != std::string_view::npos && base + 1 < line.size() &&
             line[base + 1] == ':') {
        base = line.find(':', base + 2);
      }
      if (base != std::string_view::npos && base < stop) stop = base;
      // Last identifier before the stop that is not a macro-call name
      // (i.e. not directly followed by '(').
      std::string name;
      size_t i = after;
      while (i < stop) {
        if (IsIdentChar(line[i])) {
          size_t s = i;
          while (i < stop && IsIdentChar(line[i])) ++i;
          if (i < line.size() && line[i] == '(') {
            // attribute macro / alignas: skip its argument list
            int depth = 0;
            while (i < stop) {
              if (line[i] == '(') ++depth;
              if (line[i] == ')' && --depth == 0) {
                ++i;
                break;
              }
              ++i;
            }
            continue;
          }
          name = std::string(line.substr(s, i - s));
          continue;
        }
        ++i;
      }
      if (name.empty() || name == "final") return std::nullopt;
      return name;
    }
  }
  return std::nullopt;
}

constexpr std::string_view kRawMutexTokens[] = {
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::condition_variable",
    "std::condition_variable_any"};

}  // namespace

FileModel BuildFileModel(const SourceFile& file) {
  FileModel model;
  model.file = &file;

  // Context tracking. Depth counts every '{'; classes and functions
  // remember the depth *inside* their body so members/scopes can be
  // attributed precisely.
  struct ClassCtx {
    size_t index;     // into model.classes
    int body_depth;   // depth inside the class body
  };
  struct FuncCtx {
    size_t index;     // into model.functions
    int body_depth;
  };
  struct OpenScope {
    size_t index;     // into model.scopes
    int decl_depth;   // depth at the acquisition statement
  };
  int depth = 0;
  std::vector<ClassCtx> class_stack;
  std::vector<FuncCtx> func_stack;
  std::vector<OpenScope> open_scopes;

  // A detected-but-not-yet-opened definition: the signature line(s) seen,
  // waiting for its body '{' (or cancelled by ';' — a mere declaration).
  struct Pending {
    enum Kind { kClass, kFunction } kind;
    std::string name;
    std::string class_name;
    size_t line;
    std::vector<std::string> requires_locks;
  };
  std::optional<Pending> pending;

  // Wrapped member declarations accumulate here until their ';'.
  std::string member_accum;
  size_t member_accum_line = 0;

  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const bool in_function = !func_stack.empty();
    const bool at_class_body =
        !class_stack.empty() && !in_function &&
        depth == class_stack.back().body_depth;

    // --- accumulate AT_REQUIRES on a pending (wrapped) signature ---
    if (pending && pending->kind == Pending::kFunction) {
      CollectMacroArgs(line, "AT_REQUIRES", &pending->requires_locks);
    }

    // --- class / struct opener ---
    if (!pending && !in_function) {
      if (auto name = ParseClassOpener(trimmed)) {
        pending = Pending{Pending::kClass, *name, "", li + 1, {}};
      }
    }

    // --- member declarations (direct class-body depth only) ---
    // Statements are joined across wrapped lines (`... score_cache_` /
    // `    AT_GUARDED_BY(cache_mu_);`) and parsed at their ';'. Anything
    // with a '(' in the pre-annotation head (method declarations,
    // deleted operators) is rejected.
    if (at_class_body && !pending) {
      // Access-specifier labels end in ':' not ';' — without this reset
      // they would glue onto the next member and shift its line number.
      if (trimmed == "public:" || trimmed == "private:" ||
          trimmed == "protected:") {
        member_accum.clear();
        continue;
      }
      if (member_accum.empty()) {
        member_accum_line = li + 1;
      } else {
        member_accum += ' ';
      }
      member_accum += trimmed;
      size_t semi = member_accum.find(';');
      if (semi != std::string::npos) {
        std::string_view stmt =
            TrimView(std::string_view(member_accum).substr(0, semi));
        size_t stop = stmt.size();
        for (std::string_view cut : {std::string_view("AT_GUARDED_BY"),
                                     std::string_view("AT_PT_GUARDED_BY"),
                                     std::string_view("AT_ACQUIRED_BEFORE"),
                                     std::string_view("AT_ACQUIRED_AFTER"),
                                     std::string_view("="),
                                     std::string_view("{")}) {
          size_t p = stmt.find(cut);
          if (p != std::string_view::npos && p < stop) stop = p;
        }
        std::string_view head = TrimView(stmt.substr(0, stop));
        if (!head.empty() && IsIdentChar(head.back()) &&
            head.find('(') == std::string_view::npos) {
          std::string_view name = IdentEndingAt(head, head.size());
          if (!name.empty() &&
              !std::isdigit(static_cast<unsigned char>(name.front()))) {
            MemberDecl m;
            m.name = std::string(name);
            m.line = member_accum_line;
            for (std::string_view tok : kRawMutexTokens) {
              if (stmt.find(tok) != std::string_view::npos) {
                m.is_raw_mutex = true;
              }
            }
            bool wrapper_mutex = ContainsToken(stmt, "Mutex") &&
                                 !ContainsToken(stmt, "MutexLock");
            m.is_mutex = m.is_raw_mutex || wrapper_mutex;
            m.is_condvar =
                ContainsToken(stmt, "CondVar") ||
                stmt.find("condition_variable") != std::string_view::npos;
            m.is_atomic = stmt.find("atomic<") != std::string_view::npos;
            std::vector<std::string> guarded;
            CollectMacroArgs(stmt, "AT_GUARDED_BY", &guarded);
            CollectMacroArgs(stmt, "AT_PT_GUARDED_BY", &guarded);
            if (!guarded.empty()) m.guarded_by = guarded.front();
            CollectMacroArgs(stmt, "AT_ACQUIRED_BEFORE",
                             &m.acquired_before);
            CollectMacroArgs(stmt, "AT_ACQUIRED_AFTER",
                             &m.acquired_after);
            model.classes[class_stack.back().index].members.push_back(
                std::move(m));
          }
        }
        member_accum.clear();
      }
    } else {
      member_accum.clear();
    }

    // --- function / method signature (outside any function body) ---
    if (!pending && !in_function) {
      size_t paren = trimmed.find('(');
      if (paren != std::string_view::npos && paren > 0) {
        std::string_view name = IdentEndingAt(trimmed, paren);
        if (!name.empty() && !IsControlKeyword(name) &&
            !std::isdigit(static_cast<unsigned char>(name.front()))) {
          size_t before = paren - name.size();
          // Destructors: `~ClassName(`.
          size_t qual_end = before;
          if (qual_end > 0 && trimmed[qual_end - 1] == '~') --qual_end;
          std::string class_name;
          if (qual_end >= 2 && trimmed[qual_end - 1] == ':' &&
              trimmed[qual_end - 2] == ':') {
            class_name =
                std::string(IdentEndingAt(trimmed, qual_end - 2));
          } else if (!class_stack.empty()) {
            class_name = model.classes[class_stack.back().index].name;
          }
          // `Type name(` at class scope with a preceding type token, or a
          // bare macro call — both look like signatures. Accepting them is
          // harmless: a ';' cancels, a '{' opens a (mislabeled) block that
          // still nests correctly.
          Pending p{Pending::kFunction, std::string(name),
                    std::move(class_name), li + 1, {}};
          CollectMacroArgs(trimmed, "AT_REQUIRES", &p.requires_locks);
          pending = std::move(p);
        }
      }
    }

    // --- lock-scope acquisitions (inside a function body) ---
    if (in_function || at_class_body) {
      std::string mutex_expr;
      size_t lock_pos;
      if ((lock_pos = line.find("MutexLock ")) != std::string::npos &&
          (lock_pos == 0 || !IsIdentChar(line[lock_pos - 1]))) {
        // `util::MutexLock <var>(&<mu>);`
        size_t open = line.find('(', lock_pos);
        size_t close =
            open == std::string::npos ? std::string::npos
                                      : line.find(')', open);
        if (open != std::string::npos && close != std::string::npos) {
          mutex_expr =
              NormalizeLockExpr(line.substr(open + 1, close - open - 1));
        }
      } else {
        for (std::string_view guard :
             {std::string_view("lock_guard"),
              std::string_view("unique_lock"),
              std::string_view("scoped_lock")}) {
          size_t g = line.find(guard);
          if (g == std::string::npos ||
              (g > 0 && IsIdentChar(line[g - 1]))) {
            continue;
          }
          size_t open = line.find('(', g);
          if (open == std::string::npos) continue;
          size_t close = line.find(')', open);
          if (close == std::string::npos) continue;
          std::string_view args = std::string_view(line).substr(
              open + 1, close - open - 1);
          size_t comma = args.find(',');
          if (comma != std::string_view::npos) args = args.substr(0, comma);
          mutex_expr = NormalizeLockExpr(args);
          break;
        }
      }
      if (!mutex_expr.empty()) {
        LockScope scope;
        scope.mutex = std::move(mutex_expr);
        scope.line = li + 1;
        scope.end_line = li + 1;  // extended as the block closes
        if (!func_stack.empty()) {
          scope.class_name =
              model.functions[func_stack.back().index].class_name;
        } else if (!class_stack.empty()) {
          scope.class_name = model.classes[class_stack.back().index].name;
        }
        open_scopes.push_back({model.scopes.size(), depth});
        model.scopes.push_back(std::move(scope));
      }
    }

    // --- brace / terminator scan ---
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending) {
          if (pending->kind == Pending::kClass) {
            ClassDecl cls;
            cls.name = pending->name;
            cls.line = pending->line;
            model.classes.push_back(std::move(cls));
            class_stack.push_back({model.classes.size() - 1, depth});
          } else {
            FunctionDef fn;
            fn.class_name = pending->class_name;
            fn.name = pending->name;
            fn.line = pending->line;
            fn.end_line = pending->line;
            fn.requires_locks = pending->requires_locks;
            model.functions.push_back(std::move(fn));
            func_stack.push_back({model.functions.size() - 1, depth});
          }
          pending.reset();
        }
      } else if (c == '}') {
        --depth;
        while (!open_scopes.empty() &&
               depth < open_scopes.back().decl_depth) {
          model.scopes[open_scopes.back().index].end_line = li + 1;
          open_scopes.pop_back();
        }
        if (!func_stack.empty() && depth < func_stack.back().body_depth) {
          model.functions[func_stack.back().index].end_line = li + 1;
          func_stack.pop_back();
        }
        if (!class_stack.empty() && depth < class_stack.back().body_depth) {
          class_stack.pop_back();
        }
      } else if (c == ';' && pending) {
        // A ';' before the body brace: the pending signature was only a
        // declaration (or a deleted/defaulted definition) — drop it.
        pending.reset();
      }
    }
  }

  // Close anything still open at EOF.
  while (!open_scopes.empty()) {
    model.scopes[open_scopes.back().index].end_line = file.code.size();
    open_scopes.pop_back();
  }
  while (!func_stack.empty()) {
    model.functions[func_stack.back().index].end_line = file.code.size();
    func_stack.pop_back();
  }
  return model;
}

}  // namespace autotest::lint
