#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer, then soaks the
# robustness suite with every failpoint armed at low probability so the
# fault paths stay exercised in CI.
#
#   tools/run_sanitized_tests.sh [build-dir]      (default: build-asan)
#
# With --thread-safety, instead builds the whole tree under Clang's
# -Werror=thread-safety (AT_THREAD_SAFETY=ON, requires clang++ on PATH)
# and runs the compile-fail proof pair — the local twin of the CI
# thread-safety job:
#
#   tools/run_sanitized_tests.sh --thread-safety [build-dir]
#                                                 (default: build-tsa)
#
# Environment:
#   JOBS            parallel build/test jobs (default 2)
#   SOAK_SPEC       failpoint spec for the soak (default all:p=0.01,seed=1)
#   SKIP_ASAN=1     reuse an existing build dir without reconfiguring

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-2}"

if [[ "${1:-}" == "--thread-safety" ]]; then
  BUILD_DIR="${2:-build-tsa}"
  echo "== configuring $BUILD_DIR with clang++ and AT_THREAD_SAFETY=ON"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DAT_THREAD_SAFETY=ON > /dev/null
  echo "== building under -Werror=thread-safety (j$JOBS)"
  cmake --build "$BUILD_DIR" -j"$JOBS"
  echo "== compile-fail proof (unlocked guarded write must not compile)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R "thread_safety_compile_fail"
  echo "== OK: tree is thread-safety clean and the analysis is live"
  exit 0
fi

BUILD_DIR="${1:-build-asan}"
SOAK_SPEC="${SOAK_SPEC:-all:p=0.01,seed=1}"

if [[ "${SKIP_ASAN:-0}" != "1" || ! -d "$BUILD_DIR" ]]; then
  echo "== configuring $BUILD_DIR with AT_SANITIZE=address"
  cmake -B "$BUILD_DIR" -S . -DAT_SANITIZE=address > /dev/null
fi

echo "== building (j$JOBS)"
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== tier-1 ctest under ASan"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" \
  -E "chaos_soak|serve_soak"

echo "== chaos soaks under ASan (batch + serve)"
# Serial, after the fast suite: the soaks' wall-clock caps assume they are
# not competing with parallel test processes for cores.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "chaos_soak|serve_soak"

echo "== failpoint soak: AT_FAILPOINTS=$SOAK_SPEC"
# Drive the CLI end-to-end with every failpoint armed. The contract under
# injected faults is "structured failure, never a crash": any documented
# exit code (0-7) is acceptable, a signal death (rc >= 128), sanitizer
# report or hang is not.
SOAK_DIR="$(mktemp -d)"
trap 'rm -rf "$SOAK_DIR"' EXIT
cat > "$SOAK_DIR/sample.csv" <<'EOF'
city,population
seattle,737015
tokyo,13960000
notacity,12
EOF

soak_run() {
  local rc=0
  AT_FAILPOINTS="$1" timeout 600 "${@:2}" > /dev/null 2>&1 || rc=$?
  if (( rc > 7 )); then
    echo "FAIL: '${*:2}' under AT_FAILPOINTS=$1 exited $rc" >&2
    exit 1
  fi
}

for seed in 1 2 3; do
  spec="${SOAK_SPEC%,seed=*},seed=$seed"
  echo "--  CLI soak (seed=$seed)"
  soak_run "$spec" "$BUILD_DIR/tools/autotest" train --columns 150 \
    --centroids 20 --synthetic 100 --out "$SOAK_DIR/rules.sdc"
  if [[ -f "$SOAK_DIR/rules.sdc" ]]; then
    soak_run "$spec" "$BUILD_DIR/tools/autotest" check \
      "$SOAK_DIR/sample.csv" --rules "$SOAK_DIR/rules.sdc"
  fi
done

echo "== OK: ASan-clean, soak survived"
