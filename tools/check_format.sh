#!/usr/bin/env bash
# Verifies that the files touched on this branch satisfy .clang-format,
# without reformatting anything (clang-format --dry-run -Werror).
#
#   tools/check_format.sh              # files changed vs origin/main (or HEAD~1)
#   tools/check_format.sh --all        # every tracked C++ file
#   tools/check_format.sh a.cc b.h     # just these files
#
# Scope is deliberately "changed files only": the tree predates the
# .clang-format file and is NOT wholesale-reformatted (that churn would
# bury real history), so only code this branch touches is held to it.
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (install it to" \
       "enforce formatting locally — CI runs it)" >&2
  exit 0
fi

is_cpp() {
  case "$1" in
    *.h|*.hpp|*.cc|*.cpp) return 0 ;;
    *) return 1 ;;
  esac
}

files=()
if [ "$#" -gt 0 ] && [ "$1" = "--all" ]; then
  while IFS= read -r f; do
    is_cpp "$f" && files+=("$f")
  done < <(git ls-files)
elif [ "$#" -gt 0 ]; then
  files=("$@")
else
  # Prefer the merge-base with origin/main; fall back to the last commit.
  base=$(git merge-base HEAD origin/main 2> /dev/null || echo "HEAD~1")
  while IFS= read -r f; do
    [ -f "$f" ] && is_cpp "$f" && files+=("$f")
  done < <(git diff --name-only "$base" HEAD; git diff --name-only)
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no C++ files to check"
  exit 0
fi

# Fixture files deliberately contain odd code; they are lint fixtures,
# not style exemplars, but they still must be formatted. No exclusions.
status=0
for f in $(printf '%s\n' "${files[@]}" | sort -u); do
  if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f (run: clang-format -i $f)"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: ${#files[@]} file(s) clean"
fi
exit "$status"
